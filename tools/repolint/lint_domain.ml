(* R7 — domain safety.

   PR 9's serving layer is coordinator-sequential: worker domains may
   only touch [Atomic.t] (the work-stealing cursor), and every other
   mutation happens on the coordinator before the fan-out or after the
   join.  That discipline is audited by the bit-identical 1/2/8-domain
   replay tests but nothing stops a new [Domain.spawn] from quietly
   capturing a [ref] — which is exactly the silent race this rule
   exists to catch.

   Two checks fire at each [Domain.spawn] application:

   - region: the spawn must sit inside an allowlisted (file, top-level
     binding) fan-out region ([Lint_rules.r7_spawn_allowlist]); any
     other spawn is flagged regardless of what it captures.
   - captures: outside an allowlisted region, the spawned closure's free
     variables are computed exactly (stamped idents used minus idents
     bound within the closure) and every capture whose type is nominally
     mutable — and not [Atomic.t] — is flagged at its use site.  Calls
     to locally-defined functions are followed through the per-file
     definition table, so mutation hidden one call deep
     ([Domain.spawn (fun () -> bump ())] where [bump] increments a
     captured ref) is still caught. *)

open Typedtree

type defs = (string, expression) Hashtbl.t
(* Ident.unique_name -> binding RHS, for the transitive descent. *)

let defs_create () : defs = Hashtbl.create 32

let record_def (defs : defs) (vb : value_binding) =
  match pat_bound_idents vb.vb_pat with
  | [ id ] -> Hashtbl.replace defs (Ident.unique_name id) vb.vb_expr
  | _ -> ()

(* Free uses of [e]: every [Texp_ident (Pident _)] whose stamp is not
   bound by any pattern inside [e].  Stamps make this exact — shadowing
   cannot confuse an outer capture with an inner binding. *)
let free_uses (e : expression) =
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let uses = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self x ->
          (match x.exp_desc with
          | Texp_ident (Path.Pident id, _, _) ->
              uses := (id, x.exp_type, x.exp_loc) :: !uses
          | _ -> ());
          Tast_iterator.default_iterator.expr self x);
      pat =
        (fun (type k) self (p : k general_pattern) ->
          List.iter
            (fun id -> Hashtbl.replace bound (Ident.unique_name id) ())
            (pat_bound_idents p);
          Tast_iterator.default_iterator.pat self p);
    }
  in
  it.expr it e;
  List.filter
    (fun (id, _, _) -> not (Hashtbl.mem bound (Ident.unique_name id)))
    (List.rev !uses)

let is_arrow ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

let type_to_string ty = Format.asprintf "%a" Printtyp.type_expr ty

(* Flag mutable non-atomic captures of [closure]; [via] names the local
   call chain when the capture is reached transitively. *)
let rec check_captures ctx (defs : defs) ~visited ~via (closure : expression) =
  let reported : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (id, ty, loc) ->
      let uname = Ident.unique_name id in
      match Lint_rules.r7_type_class ty with
      | `Atomic -> ()
      | `Mutable ->
          if not (Hashtbl.mem reported uname) then begin
            Hashtbl.replace reported uname ();
            let via_s =
              match via with
              | [] -> ""
              | chain -> " via " ^ String.concat " -> " chain
            in
            Lint_ctx.report ctx ~rule:"R7" ~loc
              (Printf.sprintf
                 "non-atomic mutable state '%s' (%s) captured by a \
                  Domain.spawn closure%s; worker domains may only touch \
                  Atomic.t — keep this mutation coordinator-side or make \
                  it atomic"
                 (Ident.name id) (type_to_string ty) via_s)
          end
      | `Immutable ->
          (* a captured local function can hide the mutation one call
             deep — follow its definition *)
          if is_arrow ty && not (Hashtbl.mem visited uname) then begin
            Hashtbl.replace visited uname ();
            match Hashtbl.find_opt defs uname with
            | Some rhs ->
                check_captures ctx defs ~visited
                  ~via:(via @ [ Ident.name id ])
                  rhs
            | None -> ()
          end)
    (free_uses closure)

let check_spawn ctx (defs : defs) ~(args : (Asttypes.arg_label * expression option) list)
    ~(loc : Location.t) =
  if not (Lint_rules.r7_spawn_allowed ~path:ctx.Lint_ctx.path ~toplevel:ctx.Lint_ctx.toplevel)
  then begin
    Lint_ctx.report ctx ~rule:"R7" ~loc
      (Printf.sprintf
         "Domain.spawn outside an allowlisted fan-out region (enclosing \
          binding '%s'); parallel fan-out must go through an audited \
          region backed by replay-determinism tests — see \
          Lint_rules.r7_spawn_allowlist"
         (if String.equal ctx.Lint_ctx.toplevel "" then "<module init>"
          else ctx.Lint_ctx.toplevel));
    List.iter
      (fun (_, a) ->
        match a with
        | Some closure ->
            check_captures ctx defs ~visited:(Hashtbl.create 8) ~via:[] closure
        | None -> ())
      args
  end

(* Human and JSON rendering of a lint run (schema repolint/2). *)

type run = {
  files_scanned : int;
  fresh : Finding.t list; (* findings that fail the run *)
  baselined : Finding.t list; (* accepted legacy findings *)
  stale_baseline : string list; (* baseline entries matching nothing *)
  suppressed : (string * int) list; (* rule -> [@lint.allow] hits *)
}

let count_by_rule findings =
  List.fold_left
    (fun acc (f : Finding.t) ->
      let n =
        match List.assoc_opt f.Finding.rule acc with Some n -> n | None -> 0
      in
      (f.Finding.rule, n + 1) :: List.remove_assoc f.Finding.rule acc)
    [] findings
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let assoc0 k l = match List.assoc_opt k l with Some n -> n | None -> 0

(* Every rule with at least one fresh, baselined or allowed hit. *)
let rules_in_play run =
  let fresh = count_by_rule run.fresh in
  let baselined = count_by_rule run.baselined in
  List.map fst fresh @ List.map fst baselined @ List.map fst run.suppressed
  |> List.sort_uniq String.compare
  |> List.map (fun r ->
         (r, assoc0 r fresh, assoc0 r baselined, assoc0 r run.suppressed))

let print_human ppf run =
  List.iter
    (fun f -> Format.fprintf ppf "%s@." (Finding.to_string f))
    run.fresh;
  List.iter
    (fun f -> Format.fprintf ppf "%s (baselined)@." (Finding.to_string f))
    run.baselined;
  List.iter
    (fun e -> Format.fprintf ppf "stale baseline entry: %s@." e)
    run.stale_baseline;
  Format.fprintf ppf
    "repolint: %d file%s scanned, %d finding%s (%d fresh, %d baselined%s)@."
    run.files_scanned
    (if run.files_scanned = 1 then "" else "s")
    (List.length run.fresh + List.length run.baselined)
    (if List.length run.fresh + List.length run.baselined = 1 then "" else "s")
    (List.length run.fresh) (List.length run.baselined)
    (match run.stale_baseline with
    | [] -> ""
    | l -> Printf.sprintf ", %d stale baseline" (List.length l));
  (* Per-rule summary table: attribute suppressions are first-class so a
     creeping pile of [@lint.allow] is visible in every run. *)
  match rules_in_play run with
  | [] -> ()
  | rows ->
      Format.fprintf ppf "rule   fresh  baselined  allowed@.";
      List.iter
        (fun (r, fr, b, a) ->
          Format.fprintf ppf "%-5s  %5d  %9d  %7d@." r fr b a)
        rows

let to_json run =
  let findings =
    List.map (fun f -> Finding.to_json ~baselined:false f) run.fresh
    @ List.map (fun f -> Finding.to_json ~baselined:true f) run.baselined
  in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "repolint/2");
      ("files_scanned", Obs.Json.Num (float_of_int run.files_scanned));
      ("findings", Obs.Json.List findings);
      ( "summary",
        Obs.Json.Obj
          [
            ("fresh", Obs.Json.Num (float_of_int (List.length run.fresh)));
            ( "baselined",
              Obs.Json.Num (float_of_int (List.length run.baselined)) );
            ( "suppressed",
              Obs.Json.Num
                (float_of_int
                   (List.fold_left (fun s (_, n) -> s + n) 0 run.suppressed))
            );
            ( "by_rule",
              Obs.Json.Obj
                (List.map
                   (fun (r, fr, b, a) ->
                     ( r,
                       Obs.Json.Obj
                         [
                           ("fresh", Obs.Json.Num (float_of_int fr));
                           ("baselined", Obs.Json.Num (float_of_int b));
                           ("allowed", Obs.Json.Num (float_of_int a));
                         ] ))
                   (rules_in_play run)) );
            ( "stale_baseline",
              Obs.Json.List
                (List.map (fun e -> Obs.Json.Str e) run.stale_baseline) );
          ] );
    ]

let write_json file run =
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Obs.Json.to_string_pretty (to_json run)))

(* Human and JSON rendering of a lint run. *)

type run = {
  files_scanned : int;
  fresh : Finding.t list; (* findings that fail the run *)
  baselined : Finding.t list; (* accepted legacy findings *)
  stale_baseline : string list; (* baseline entries matching nothing *)
}

let count_by_rule findings =
  List.fold_left
    (fun acc (f : Finding.t) ->
      let n =
        match List.assoc_opt f.Finding.rule acc with Some n -> n | None -> 0
      in
      (f.Finding.rule, n + 1) :: List.remove_assoc f.Finding.rule acc)
    [] findings
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let print_human ppf run =
  List.iter
    (fun f -> Format.fprintf ppf "%s@." (Finding.to_string f))
    run.fresh;
  List.iter
    (fun f -> Format.fprintf ppf "%s (baselined)@." (Finding.to_string f))
    run.baselined;
  List.iter
    (fun e -> Format.fprintf ppf "stale baseline entry: %s@." e)
    run.stale_baseline;
  let by_rule = count_by_rule (run.fresh @ run.baselined) in
  Format.fprintf ppf "repolint: %d file%s scanned, %d finding%s (%d fresh, %d baselined%s)@."
    run.files_scanned
    (if run.files_scanned = 1 then "" else "s")
    (List.length run.fresh + List.length run.baselined)
    (if List.length run.fresh + List.length run.baselined = 1 then "" else "s")
    (List.length run.fresh) (List.length run.baselined)
    (match run.stale_baseline with
    | [] -> ""
    | l -> Printf.sprintf ", %d stale baseline" (List.length l));
  if by_rule <> [] then begin
    Format.fprintf ppf "by rule:";
    List.iter (fun (r, n) -> Format.fprintf ppf " %s=%d" r n) by_rule;
    Format.fprintf ppf "@."
  end

let to_json run =
  let findings =
    List.map (fun f -> Finding.to_json ~baselined:false f) run.fresh
    @ List.map (fun f -> Finding.to_json ~baselined:true f) run.baselined
  in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "repolint/1");
      ("files_scanned", Obs.Json.Num (float_of_int run.files_scanned));
      ("findings", Obs.Json.List findings);
      ( "summary",
        Obs.Json.Obj
          [
            ("fresh", Obs.Json.Num (float_of_int (List.length run.fresh)));
            ( "baselined",
              Obs.Json.Num (float_of_int (List.length run.baselined)) );
            ( "by_rule",
              Obs.Json.Obj
                (List.map
                   (fun (r, n) -> (r, Obs.Json.Num (float_of_int n)))
                   (count_by_rule (run.fresh @ run.baselined))) );
            ( "stale_baseline",
              Obs.Json.List
                (List.map (fun e -> Obs.Json.Str e) run.stale_baseline) );
          ] );
    ]

let write_json file run =
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Obs.Json.to_string_pretty (to_json run)))

(* repolint: typed invariant checker for determinism, certification taint
   and domain safety.  See DESIGN.md "Static analysis" for the rule table.

   Usage:
     repolint [--baseline FILE] [--json FILE] [--build-dir DIR]
              [--write-baseline] [--rules] [DIR|FILE ...]

   Directories default to lib bin bench tools examples test, scanned
   recursively for .ml/.mli in sorted order (test/lint/fixtures is the
   lint test corpus — deliberate violations — and is skipped).  The
   engine reads dune-produced .cmt typedtrees from --build-dir
   (default _build/default), so the tree must be built first; a source
   with no typedtree is a PARSE finding, not a silent skip.

   Exit status: 0 clean, 1 fresh findings, 2 usage error, 3 stale
   baseline entries (a hard failure so the baseline shrinks instead of
   rotting; regenerate with `make lint-baseline`). *)

open Repolint_lib

let default_dirs = [ "lib"; "bin"; "bench"; "tools"; "examples"; "test" ]
let default_build_dir = "_build/default"

let normalize path =
  let path =
    if String.length path > 2 && String.equal (String.sub path 0 2) "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  String.map (fun c -> if c = '\\' then '/' else c) path

let skip_dir name =
  String.equal name "_build" || String.equal name "_opam"
  || (String.length name > 0 && name.[0] = '.')

let under prefix path =
  String.length path >= String.length prefix
  && String.equal (String.sub path 0 (String.length prefix)) prefix

(* The lint fixture corpus is linted by test/lint with synthetic logical
   paths; in a repo scan its deliberate violations would be noise. *)
let skip_path path = under "test/lint/fixtures/" path

let rec walk path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if skip_dir entry then acc
           else walk (Filename.concat path entry) acc)
         acc
  else if
    (Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli")
    && not (skip_path (normalize path))
  then normalize path :: acc
  else acc

let usage () =
  prerr_endline
    "usage: repolint [--baseline FILE] [--json FILE] [--build-dir DIR]\n\
    \                [--write-baseline] [--rules] [DIR|FILE ...]";
  exit 2

let print_rules () =
  List.iter
    (fun (r : Lint_rules.rule) ->
      Printf.printf "%s %-24s %s\n" r.Lint_rules.id r.Lint_rules.title
        r.Lint_rules.description)
    Lint_rules.all

let merge_suppressed acc sup =
  List.fold_left
    (fun acc (rule, n) ->
      let m = match List.assoc_opt rule acc with Some m -> m | None -> 0 in
      (rule, m + n) :: List.remove_assoc rule acc)
    acc sup

let () =
  let baseline_file = ref "lint_baseline.txt" in
  let json_file = ref "" in
  let build_dir = ref default_build_dir in
  let write_baseline = ref false in
  let dirs = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--baseline" :: f :: rest ->
        baseline_file := f;
        parse_args rest
    | "--json" :: f :: rest ->
        json_file := f;
        parse_args rest
    | "--build-dir" :: d :: rest ->
        build_dir := d;
        parse_args rest
    | "--write-baseline" :: rest ->
        write_baseline := true;
        parse_args rest
    | "--rules" :: _ ->
        print_rules ();
        exit 0
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | dir :: rest ->
        dirs := dir :: !dirs;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let dirs = match List.rev !dirs with [] -> default_dirs | l -> l in
  let files =
    List.fold_left
      (fun acc d ->
        if Sys.file_exists d then walk d acc
        else begin
          Printf.eprintf "repolint: no such file or directory: %s\n" d;
          exit 2
        end)
      [] dirs
    |> List.sort_uniq String.compare
  in
  let index = Cmt_index.build ~roots:[ !build_dir ] in
  let taint = Lint_taint.create () in
  (* pass 1: cross-module taint summaries over every scanned file *)
  List.iter
    (fun src ->
      match Cmt_index.lookup index src with
      | Some cmt -> Lint_engine.summarize ~taint ~path:src cmt
      | None -> ())
    files;
  (* pass 2: the rules *)
  let results =
    List.map
      (fun src ->
        match Cmt_index.lookup index src with
        | Some cmt -> Lint_engine.lint_cmt ~taint ~path:src cmt
        | None -> Lint_engine.missing_cmt ~path:src)
      files
  in
  let findings =
    List.concat_map (fun r -> r.Lint_engine.findings) results
    |> List.sort Finding.compare
  in
  let suppressed =
    List.fold_left
      (fun acc r -> merge_suppressed acc r.Lint_engine.suppressed)
      [] results
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  if !write_baseline then begin
    Lint_baseline.write !baseline_file findings;
    Printf.printf "repolint: wrote %d finding key%s to %s\n"
      (List.length findings)
      (if List.length findings = 1 then "" else "s")
      !baseline_file;
    exit 0
  end;
  let baseline = Lint_baseline.load !baseline_file in
  let fresh, baselined =
    List.partition (fun f -> not (Lint_baseline.mem baseline f)) findings
  in
  let stale = Lint_baseline.stale baseline findings in
  let run =
    {
      Lint_report.files_scanned = List.length files;
      fresh;
      baselined;
      stale_baseline = stale;
      suppressed;
    }
  in
  Lint_report.print_human Format.std_formatter run;
  if not (String.equal !json_file "") then Lint_report.write_json !json_file run;
  if fresh <> [] then exit 1 else if stale <> [] then exit 3 else exit 0

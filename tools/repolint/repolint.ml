(* repolint: AST-level invariant checker for determinism, float-safety and
   partiality.  See DESIGN.md "Static analysis" for the rule table.

   Usage:
     repolint [--baseline FILE] [--json FILE] [--rules] [DIR|FILE ...]

   Directories default to lib bin bench tools, scanned recursively for
   .ml/.mli in sorted order.  Exit status is 0 iff every finding is
   covered by the baseline file. *)

open Repolint_lib

let default_dirs = [ "lib"; "bin"; "bench"; "tools" ]

let normalize path =
  let path =
    if String.length path > 2 && String.equal (String.sub path 0 2) "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  String.map (fun c -> if c = '\\' then '/' else c) path

let skip_dir name =
  String.equal name "_build" || String.equal name "_opam"
  || (String.length name > 0 && name.[0] = '.')

let rec walk path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if skip_dir entry then acc
           else walk (Filename.concat path entry) acc)
         acc
  else if
    Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then normalize path :: acc
  else acc

let usage () =
  prerr_endline
    "usage: repolint [--baseline FILE] [--json FILE] [--rules] [DIR|FILE ...]";
  exit 2

let print_rules () =
  List.iter
    (fun (r : Lint_rules.rule) ->
      Printf.printf "%s %-24s %s\n" r.Lint_rules.id r.Lint_rules.title
        r.Lint_rules.description)
    Lint_rules.all

let () =
  let baseline_file = ref "lint_baseline.txt" in
  let json_file = ref "" in
  let dirs = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--baseline" :: f :: rest ->
        baseline_file := f;
        parse_args rest
    | "--json" :: f :: rest ->
        json_file := f;
        parse_args rest
    | "--rules" :: _ ->
        print_rules ();
        exit 0
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | dir :: rest ->
        dirs := dir :: !dirs;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let dirs = match List.rev !dirs with [] -> default_dirs | l -> l in
  let files =
    List.fold_left
      (fun acc d ->
        if Sys.file_exists d then walk d acc
        else begin
          Printf.eprintf "repolint: no such file or directory: %s\n" d;
          exit 2
        end)
      [] dirs
    |> List.sort_uniq String.compare
  in
  let findings =
    List.concat_map (fun f -> Lint_engine.lint_file f) files
    |> List.sort Finding.compare
  in
  let baseline = Lint_baseline.load !baseline_file in
  let fresh, baselined =
    List.partition (fun f -> not (Lint_baseline.mem baseline f)) findings
  in
  let run =
    {
      Lint_report.files_scanned = List.length files;
      fresh;
      baselined;
      stale_baseline = Lint_baseline.stale baseline findings;
    }
  in
  Lint_report.print_human Format.std_formatter run;
  if not (String.equal !json_file "") then Lint_report.write_json !json_file run;
  exit (if fresh = [] then 0 else 1)

(* The rule set.  Each rule has an id (the suppression/baseline key), a
   one-line description (shown in reports and DESIGN.md), and a zone
   scope derived from the file's repo-relative path.

   Since the engine moved from the parsetree to dune-produced .cmt
   typedtrees, rules match on *resolved* paths ("Stdlib.List.hd" stays
   "List.hd" even behind a module alias; a local function named [hd]
   never matches) and, where it matters, on the instantiated type at the
   use site.  The registries below are the single authority the typed
   rules consult: identifier tables for R1/R2/R4/R5, the comparator set
   and safe-scalar test for R3, the producer/sanitizer/sink sets for R6
   and the mutable-type table plus spawn allowlist for R7. *)

let under prefix path =
  String.length path >= String.length prefix
  && String.equal (String.sub path 0 (String.length prefix)) prefix

(* ---- path zones ---- *)

(* Zones are computed from repo-relative '/'-separated paths.  Per-zone
   rule configuration lives in [active_for] and the R1 refinement
   [r1_seeded_state_ok]. *)
type zone =
  | Lib_obs  (* the telemetry layer: it *is* the clock *)
  | Lib_lp  (* the solver layer: below the certification boundary *)
  | Lib_core
  | Lib_other  (* remaining lib/ sub-libraries, serve included *)
  | Bin
  | Bench
  | Tools
  | Examples
  | Test

let zone_of_path path =
  if under "lib/obs/" path then Lib_obs
  else if under "lib/lp/" path then Lib_lp
  else if under "lib/core/" path then Lib_core
  else if under "lib/" path then Lib_other
  else if under "bin/" path then Bin
  else if under "bench/" path then Bench
  else if under "tools/" path then Tools
  else if under "examples/" path then Examples
  else if under "test/" path then Test
  else Lib_other

let in_lib path = under "lib/" path

type rule = { id : string; title : string; description : string }

let all =
  [
    {
      id = "R1";
      title = "determinism";
      description =
        "ambient entropy and wall-clock reads (global-state Random.*, \
         self_init, Sys.time, Unix.gettimeofday, Hashtbl.hash) are \
         forbidden outside lib/obs and bench/; use lib/rng for randomness \
         and Obs.Trace.now for timestamps.  In test/ an explicitly seeded \
         Random.State is also accepted";
    };
    {
      id = "R2";
      title = "ordered-iteration";
      description =
        "Hashtbl.iter/Hashtbl.fold leak hash-order into results; sort the \
         output (a fold feeding List.sort/Array.sort is accepted) or mark \
         the site order-insensitive with [@lint.allow \"R2\"]";
    };
    {
      id = "R3";
      title = "no-polymorphic-compare";
      description =
        "the polymorphic comparators compare/min/max and =/<> are \
         forbidden where the typedtree shows a nominal or polymorphic \
         instantiation (type variable, record, variant, abstract type); \
         scalars (int, float, string, char, bool, unit), structural \
         compositions of scalars (lists/options/arrays/tuples thereof) \
         and comparisons against ground literals are accepted.  Use \
         Int.compare/Float.equal/explicit comparators";
    };
    {
      id = "R4";
      title = "totality";
      description =
        "partial accessors (List.hd, List.nth, Option.get, Hashtbl.find), \
         matched by resolved path, are forbidden in planner paths \
         (lib/core, lib/lp); use _opt variants or a match that raises \
         with the node/variable name";
    };
    {
      id = "R5";
      title = "io-hygiene";
      description =
        "stdout printing (print_endline, Printf.printf, Format.printf, ...) \
         is forbidden in lib/; take a Format.formatter or emit through \
         lib/obs exporters";
    };
    {
      id = "R6";
      title = "certification-taint";
      description =
        "values of LP-solution/plan type reaching dissemination or serving \
         sinks (Replan.create/consider/force, Simnet_exec collection, \
         Server response construction) must flow through the certified \
         chain (Robust_plan, Model.solve_certified, Certify); raw \
         Revised.solve / Dense_simplex.solve / Model.solve results and \
         hand-built solution records are tracked inter-procedurally and \
         flagged at the sink with their def-use path";
    };
    {
      id = "R7";
      title = "domain-safety";
      description =
        "mutable state (refs, arrays, mutable containers, Obs metrics) \
         captured by a closure passed to Domain.spawn must be Atomic.t, \
         and every Domain.spawn must sit in an allowlisted, audited \
         fan-out region (lib/serve server.ml run_tasks); anything else is \
         a latent data race on the serving path";
    };
  ]

let find id = List.find_opt (fun r -> String.equal r.id id) all

(* ---- resolved-path normalization ---- *)

(* Flatten a typedtree [Path.t] to candidate names the registries match
   on.  Dune's wrapped libraries mangle module names ("Prospector__Replan")
   and prefix them with the library alias ("Prospector.Replan.consider");
   both collapse to the same short form.  [Stdlib] is stripped so registry
   entries read like source code ("List.hd", "compare",
   "Random.State.make"). *)
let demangle_component c =
  (* "Lib__Module" -> "Module": keep what follows the last "__" *)
  let n = String.length c in
  let rec scan i best =
    if i + 1 >= n then best
    else if c.[i] = '_' && c.[i + 1] = '_' then scan (i + 2) (Some (i + 2))
    else scan (i + 1) best
  in
  match scan 0 None with
  | Some s when s < n -> String.sub c s (n - s)
  | _ -> c

(* Compilation-unit names as recorded in .cmt headers ("Serve__Server",
   "Dune__exe__Main") demangle the same way as path components. *)
let normalize_modname m = demangle_component m

let normalize_components path =
  let comps =
    String.split_on_char '.' (Path.name path) |> List.map demangle_component
  in
  match comps with "Stdlib" :: rest when rest <> [] -> rest | l -> l

(* The names a resolved path answers to: the fully normalized form and
   its two-component suffix ("Prospector.Replan.consider" also answers
   to "Replan.consider").  Single trailing components are deliberately
   not candidates: "compare" must be Stdlib's, not Finding.compare. *)
let candidates path =
  let comps = normalize_components path in
  let full = String.concat "." comps in
  match List.rev comps with
  | v :: m :: _ :: _ -> [ full; m ^ "." ^ v ]
  | _ -> [ full ]

let path_matches names path =
  let cs = candidates path in
  List.exists (fun n -> List.exists (String.equal n) cs) names

let path_prefix_matches prefixes path =
  let cs = candidates path in
  List.exists (fun p -> List.exists (under p) cs) prefixes

(* ---- R1: ambient entropy ---- *)

(* Global-state Random, self-seeding and wall clocks are always ambient.
   [Random.State.*] on an explicitly seeded state is deterministic and
   accepted in test/ (production code still threads Rng.t). *)
let r1_always_forbidden path =
  path_matches
    [
      "Sys.time";
      "Unix.gettimeofday";
      "Hashtbl.hash";
      "Hashtbl.seeded_hash";
      "Random.self_init";
      "Random.State.make_self_init";
    ]
    path

let r1_random path = path_prefix_matches [ "Random." ] path

let r1_seeded_state path =
  path_prefix_matches [ "Random.State." ] path
  && not (path_matches [ "Random.State.make_self_init" ] path)

(* ---- R2: hash-order iteration ---- *)

let r2_forbidden path = path_matches [ "Hashtbl.iter"; "Hashtbl.fold" ] path

let sort_sink path =
  path_matches
    [
      "List.sort";
      "List.stable_sort";
      "List.fast_sort";
      "List.sort_uniq";
      "Array.sort";
      "Array.stable_sort";
      "Array.fast_sort";
    ]
    path

(* ---- R3: polymorphic comparison ---- *)

let r3_comparator path = path_matches [ "compare"; "min"; "max" ] path
let r3_equality path = path_matches [ "="; "<>" ] path

(* Scalar instantiations where the polymorphic primitives are
   deterministic and unsurprising.  Everything else — type variables,
   tuples, records, constructors, lists, arrays, abstract types — is
   flagged. *)
let safe_scalar (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) ->
      List.exists (Path.same p)
        [
          Predef.path_int;
          Predef.path_float;
          Predef.path_string;
          Predef.path_char;
          Predef.path_bool;
          Predef.path_unit;
          Predef.path_int32;
          Predef.path_int64;
          Predef.path_nativeint;
        ]
  | _ -> false

(* Structural compositions of safe scalars (lists, options, arrays and
   tuples thereof) compare element-wise and deterministically, so the
   polymorphic primitives are fine there too.  Anything nominal —
   records, variants, abstract types — or polymorphic stays flagged:
   that is where representation leaks into ordering. *)
let rec safe_structure (ty : Types.type_expr) =
  safe_scalar ty
  ||
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) ->
      List.exists (Path.same p)
        [ Predef.path_list; Predef.path_option; Predef.path_array ]
      && List.for_all safe_structure args
  | Types.Ttuple tys -> List.for_all safe_structure tys
  | _ -> false

(* ---- R4: partial accessors ---- *)

let r4_forbidden path =
  path_matches [ "List.hd"; "List.nth"; "Option.get"; "Hashtbl.find" ] path

(* ---- R5: stdout hygiene ---- *)

let r5_forbidden path =
  path_matches
    [
      "print_endline";
      "print_string";
      "print_newline";
      "print_int";
      "print_float";
      "print_char";
      "print_bytes";
      "Printf.printf";
      "Format.printf";
      "Format.print_string";
      "Format.print_newline";
    ]
    path

(* ---- R6: certification taint ---- *)

(* The producer zone: lib/lp *is* the solver, so building solutions and
   calling Revised.solve there is its job; its exports are classified
   here instead.  Everywhere else these calls mint taint. *)
let r6_producer_zone path = zone_of_path path = Lib_lp

let r6_producer path =
  path_matches [ "Revised.solve"; "Dense_simplex.solve"; "Model.solve" ] path

(* The certified chain.  A value returned by any of these carries a
   certificate (or a refusal) by construction — PR 3's fallback chain,
   PR 7's guarantee ladder and PR 8's repair controller all bottom out
   here. *)
let r6_sanitizer path =
  path_matches
    [
      "Model.solve_certified";
      "Model.solve_dense_certified";
      "Certify.certify_optimal";
      "Certify.certify_feasible";
      "Certify.certify_infeasible";
      "Certify.certify_unbounded";
      "Robust_plan.solve";
      "Robust_plan.plan_with_guarantee";
      "Lp_lf.plan";
      "Lp_no_lf.plan";
      "Lp_proof.plan";
      "Ship_lp.plan_by_colsum";
      "Subset_planner.plan";
      "Repair.surgery";
      "Repair.observe";
      "Repair.create";
    ]
    path

(* Dissemination / serving sinks: a tainted argument reaching any of
   these is the invariant violation R6 exists for. *)
let r6_sink path =
  path_matches
    [
      "Replan.create";
      "Replan.consider";
      "Replan.force";
      "Simnet_exec.collect";
      "Simnet_exec.proof_collect";
      "Simnet_exec.exact";
      "Simnet_protocols.naive_one";
    ]
    path

(* Record types that denote an LP solution; a record literal of one of
   these outside lib/lp is a hand-built solution and mints taint. *)
let r6_solution_type_names = [ "Revised.result"; "Model.solution" ]

(* Record types whose construction is itself a sink (field values must
   be certified): the serving layer's response. *)
let r6_sink_type_names = [ "Server.response" ]

let type_name_matches names (p : Path.t) =
  let comps = normalize_components p in
  let full = String.concat "." comps in
  let last2 =
    match List.rev comps with
    | v :: m :: _ -> m ^ "." ^ v
    | _ -> full
  in
  List.exists (fun n -> String.equal n full || String.equal n last2) names

(* Is a record of type [p], built in [path], a serving-response sink?
   Inside the defining module the type's path is a bare [Pident]
   ("response"), so the registry's module-qualified entries are also
   matched against the defining file. *)
let r6_sink_record ~path (p : Path.t) =
  type_name_matches r6_sink_type_names p
  || String.equal path "lib/serve/server.ml"
     && String.equal (String.concat "." (normalize_components p)) "response"

(* ---- R7: domain safety ---- *)

let r7_spawn path = path_matches [ "Domain.spawn" ] path

(* Audited fan-out regions: (file, enclosing top-level binding).  The
   only sanctioned spawn site is PR 9's coordinator-sequential solve
   fan-out, audited by test/serve's bit-identical 1/2/8-domain replay
   suite.  New entries must cite equivalent replay evidence in
   DESIGN.md. *)
let r7_spawn_allowlist = [ ("lib/serve/server.ml", "run_tasks") ]

let r7_spawn_allowed ~path ~toplevel =
  List.exists
    (fun (f, b) -> String.equal f path && String.equal b toplevel)
    r7_spawn_allowlist

let r7_atomic_type_path p = path_matches [ "Atomic.t" ] p

(* Nominally mutable types: capturing one of these (outside an atomic
   wrapper) in a spawned closure is a shared-mutation hazard.  Matching
   is nominal — abbreviations are not expanded (no typing environment is
   reconstructed) — which is exactly as strong as the registry. *)
let r7_mutable_type_path p =
  let name = String.concat "." (normalize_components p) in
  List.exists (String.equal name)
    [
      "ref";
      "array";
      "bytes";
      "Hashtbl.t";
      "Buffer.t";
      "Queue.t";
      "Stack.t";
      "Metrics.counter";
      "Metrics.fsum";
      "Metrics.gauge";
      "Metrics.histogram";
    ]

let rec r7_type_class (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) ->
      if r7_atomic_type_path p then `Atomic
      else if r7_mutable_type_path p then `Mutable
      else if List.exists (fun a -> r7_type_class a = `Mutable) args then
        (* e.g. [int ref option], [float array list] *)
        `Mutable
      else `Immutable
  | Types.Ttuple tys ->
      if List.exists (fun a -> r7_type_class a = `Mutable) tys then `Mutable
      else `Immutable
  | _ -> `Immutable

(* ---- per-zone rule configuration ---- *)

(* Which rules apply to a file, given its repo-relative path.  test/ and
   examples/ are covered since the typed engine landed: R5 is a
   lib-hygiene rule and stays off there; R4 stays scoped to planner
   paths; R6/R7 guard production dissemination/serving code, so tests
   (which hand-build plans on purpose) are exempt. *)
let active_for path rule_id =
  let zone = zone_of_path path in
  match rule_id with
  | "R1" -> not (zone = Lib_obs || zone = Bench)
  | "R2" | "R3" -> true
  | "R4" -> zone = Lib_core || zone = Lib_lp
  | "R5" -> in_lib path
  | "R6" | "R7" -> zone <> Test
  | _ -> true

(* R1 refinement: in test/, explicitly seeded Random.State is accepted
   (property tests drive QCheck with pinned states). *)
let r1_seeded_state_ok path = zone_of_path path = Test

(* The rule set.  Each rule has an id (the suppression/baseline key), a
   one-line description (shown in reports and DESIGN.md), and a syntactic
   scope derived from the file's repo-relative path.

   Rules match on flattened identifier paths ("Hashtbl.fold", "compare").
   This is a Parsetree-level check: no type information is available, so
   each rule's predicate is deliberately syntactic and documented as such
   in DESIGN.md ("Static analysis"). *)

let under prefix path =
  String.length path >= String.length prefix
  && String.equal (String.sub path 0 (String.length prefix)) prefix

(* Path zones.  Paths are repo-relative with '/' separators. *)
let in_obs path = under "lib/obs/" path
let in_bench path = under "bench/" path
let in_lib path = under "lib/" path
let in_planner_paths path = under "lib/core/" path || under "lib/lp/" path

type rule = { id : string; title : string; description : string }

let all =
  [
    {
      id = "R1";
      title = "determinism";
      description =
        "wall-clock and hashing entropy sources (Random.*, Sys.time, \
         Unix.gettimeofday, Hashtbl.hash) are forbidden outside lib/obs and \
         bench/; use lib/rng for randomness and Obs.Trace.now for timestamps";
    };
    {
      id = "R2";
      title = "ordered-iteration";
      description =
        "Hashtbl.iter/Hashtbl.fold leak hash-order into results; sort the \
         output (a fold feeding List.sort/Array.sort is accepted) or mark \
         the site order-insensitive with [@lint.allow \"R2\"]";
    };
    {
      id = "R3";
      title = "no-polymorphic-compare";
      description =
        "the polymorphic comparators compare/min/max (which never \
         specialize when passed as closures) and =/<> applied to syntactic \
         structures (tuples, records, constructor applications, arrays) \
         are forbidden; use Float.equal/Int.compare/explicit comparators";
    };
    {
      id = "R4";
      title = "totality";
      description =
        "partial accessors (List.hd, List.nth, Option.get, Hashtbl.find) \
         are forbidden in planner paths (lib/core, lib/lp); use _opt \
         variants or a match that raises with the node/variable name";
    };
    {
      id = "R5";
      title = "io-hygiene";
      description =
        "stdout printing (print_endline, Printf.printf, Format.printf, ...) \
         is forbidden in lib/; take a Format.formatter or emit through \
         lib/obs exporters";
    };
  ]

let find id = List.find_opt (fun r -> String.equal r.id id) all

(* ---- per-rule identifier tables ---- *)

let strip_stdlib name =
  if under "Stdlib." name then
    String.sub name 7 (String.length name - 7)
  else name

let r1_forbidden name =
  let name = strip_stdlib name in
  under "Random." name
  || List.exists (String.equal name)
       [ "Sys.time"; "Unix.gettimeofday"; "Hashtbl.hash"; "Hashtbl.seeded_hash" ]

let r2_forbidden name =
  let name = strip_stdlib name in
  List.exists (String.equal name) [ "Hashtbl.iter"; "Hashtbl.fold" ]

let r3_comparator name =
  let name = strip_stdlib name in
  List.exists (String.equal name) [ "compare"; "min"; "max" ]

let r4_forbidden name =
  let name = strip_stdlib name in
  List.exists (String.equal name)
    [ "List.hd"; "List.nth"; "Option.get"; "Hashtbl.find" ]

let r5_forbidden name =
  let name = strip_stdlib name in
  List.exists (String.equal name)
    [
      "print_endline";
      "print_string";
      "print_newline";
      "print_int";
      "print_float";
      "print_char";
      "print_bytes";
      "Printf.printf";
      "Format.printf";
      "Format.print_string";
      "Format.print_newline";
    ]

(* Sort sinks that make a feeding Hashtbl.fold/iter order-safe. *)
let sort_sink name =
  let name = strip_stdlib name in
  List.exists (String.equal name)
    [
      "List.sort";
      "List.stable_sort";
      "List.fast_sort";
      "List.sort_uniq";
      "Array.sort";
      "Array.stable_sort";
      "Array.fast_sort";
    ]

(* Which rules apply to a file, given its repo-relative path. *)
let active_for path rule_id =
  match rule_id with
  | "R1" -> not (in_obs path || in_bench path)
  | "R2" -> true
  | "R3" -> true
  | "R4" -> in_planner_paths path
  | "R5" -> in_lib path
  | _ -> true

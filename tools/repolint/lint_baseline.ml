(* Line-keyed acceptance list for legacy findings.  Each non-comment line
   is a finding key as printed by [Finding.baseline_key]:

       R2 lib/obs/metrics.ml:309

   A finding whose key appears here is reported but does not fail the
   run.  Entries that no longer match anything are reported as stale so
   the file shrinks instead of rotting. *)

type t = string list (* keys, in file order *)

let empty = []

let parse_string s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if String.equal line "" || String.length line > 0 && line.[0] = '#'
         then None
         else Some line)

let load file =
  if Sys.file_exists file then begin
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> parse_string (really_input_string ic (in_channel_length ic)))
  end
  else empty

let mem t finding =
  let key = Finding.baseline_key finding in
  List.exists (String.equal key) t

(* Entries matching no current finding. *)
let stale t findings =
  let keys = List.map Finding.baseline_key findings in
  List.filter (fun e -> not (List.exists (String.equal e) keys)) t

(* Deterministic regeneration (make lint-baseline): one key per current
   finding, sorted and deduplicated, under a header explaining how the
   file is maintained.  Writing an empty baseline produces just the
   header, which is the steady state this repo aims for. *)
let write file findings =
  let keys =
    List.map Finding.baseline_key findings |> List.sort_uniq String.compare
  in
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        "# repolint baseline: accepted legacy findings, one key per line.\n\
         # Regenerate with `make lint-baseline`; stale entries fail CI \
         (exit 3).\n";
      List.iter (fun k -> output_string oc (k ^ "\n")) keys)

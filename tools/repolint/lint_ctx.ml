(* Shared per-file analysis context: the [@lint.allow] scope stack, the
   sanctioned-range set (parent nodes vouching for children, e.g. a fold
   feeding a sort), the findings accumulator and the per-rule
   attribute-suppression tally that feeds the report's summary table.

   The rule modules (Lint_taint, Lint_domain) and the engine all report
   through [report], so suppression and zone scoping behave identically
   for every rule. *)

type ctx = {
  path : string;  (** repo-relative logical path: rule scoping + reporting *)
  mutable allow_stack : string list list;
  mutable file_allows : string list;
  mutable sanctioned : (string * int * int) list;  (** rule, cnum range *)
  mutable toplevel : string;  (** enclosing structure-level binding name *)
  mutable findings : Finding.t list;
  mutable suppressed : (string * int) list;  (** rule -> allow-attr hits *)
}

let create path =
  {
    path;
    allow_stack = [];
    file_allows = [];
    sanctioned = [];
    toplevel = "";
    findings = [];
    suppressed = [];
  }

let line_col (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let allowed ctx rule =
  List.exists (List.exists (String.equal rule)) ctx.allow_stack
  || List.exists (String.equal rule) ctx.file_allows

let sanctioned ctx rule (loc : Location.t) =
  List.exists
    (fun (r, s, e) ->
      String.equal r rule
      && s <= loc.loc_start.pos_cnum
      && loc.loc_end.pos_cnum <= e)
    ctx.sanctioned

let sanction ctx rule (loc : Location.t) =
  ctx.sanctioned <-
    (rule, loc.loc_start.pos_cnum, loc.loc_end.pos_cnum) :: ctx.sanctioned

let count_suppressed ctx rule =
  let n =
    match List.assoc_opt rule ctx.suppressed with Some n -> n | None -> 0
  in
  ctx.suppressed <- (rule, n + 1) :: List.remove_assoc rule ctx.suppressed

let report ctx ~rule ~loc msg =
  if Lint_rules.active_for ctx.path rule && not (sanctioned ctx rule loc) then
    if allowed ctx rule then count_suppressed ctx rule
    else begin
      let line, col = line_col loc in
      ctx.findings <-
        Finding.make ~rule ~file:ctx.path ~line ~col msg :: ctx.findings
    end

(* ---- attribute handling ---- *)

let allow_rules_of_attrs (attrs : Parsetree.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if String.equal a.attr_name.Location.txt "lint.allow" then
        match a.attr_payload with
        | Parsetree.PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( {
                        pexp_desc =
                          Pexp_constant (Pconst_string (s, _, _));
                        _;
                      },
                      _ );
                _;
              };
            ] ->
            String.split_on_char ' ' s
            |> List.concat_map (String.split_on_char ',')
            |> List.filter (fun r -> not (String.equal r ""))
        | _ -> []
      else [])
    attrs

#!/usr/bin/env bash
# Run one named CI step under wall-clock timing.
#
#   .github/scripts/timed.sh <step-name> <command...>
#
# Appends "<step-name> <seconds> <exit-status>" to the timing log
# ($STEP_TIMINGS_FILE, default step_timings.txt) and propagates the
# command's exit status, so a job's final summary step can publish a
# per-step timing table into $GITHUB_STEP_SUMMARY even when a step failed.
set -uo pipefail

name="$1"
shift

start=$(date +%s)
"$@"
status=$?
end=$(date +%s)

echo "$name $((end - start)) $status" >> "${STEP_TIMINGS_FILE:-step_timings.txt}"
exit "$status"

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md for the experiment index), plus the
   LP solve-time measurements reported in "Other Results".

   Usage:
     dune exec bench/main.exe                 -- everything, full size
     dune exec bench/main.exe -- --quick      -- everything, small instances
     dune exec bench/main.exe -- fig3 fig5    -- selected experiments
     dune exec bench/main.exe -- --seed 7 fig4 *)

open Bechamel
open Toolkit

let seed = ref 20060403 (* ICDE 2006 *)
let quick = ref false
let csv_dir = ref None
let json_path = ref None

(* Output override for the record-writing experiments ([certify],
   [telemetry]); lets CI write fresh records next to — never over — the
   committed baselines. *)
let out_path = ref None

let out_or default = Option.value !out_path ~default

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c
      | _ -> '_')
    title

let dump_csv name series =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iteri
        (fun i s ->
          let path =
            Filename.concat dir
              (Printf.sprintf "%s_%d_%s.csv" name i
                 (slug s.Experiments.Series.title))
          in
          let oc = open_out path in
          output_string oc (Experiments.Series.to_csv s);
          close_out oc)
        series

let run_figures name runner =
  Format.printf "@.######## %s ########@." name;
  let t0 = Unix.gettimeofday () in
  let series = runner ?quick:(Some !quick) ~seed:!seed () in
  Experiments.Series.print_all Format.std_formatter series;
  dump_csv name series;
  Format.printf "(%s completed in %.1fs)@." name (Unix.gettimeofday () -. t0)

(* ---- LP solve-time micro-benchmarks ---- *)

let lp_instance ~n ~n_samples ~k =
  let rng = Rng.create !seed in
  let layout = Sensor.Placement.uniform rng ~n ~width:200. ~height:200. () in
  let range = Sensor.Topology.min_connecting_range layout *. 1.25 in
  let topo = Sensor.Topology.build layout ~range in
  let cost = Sensor.Cost.of_mica2 topo Sensor.Mica2.default in
  let field =
    Sampling.Field.random_gaussian rng ~n ~mean_lo:20. ~mean_hi:30.
      ~sigma_lo:1. ~sigma_hi:4.
  in
  let samples = Sampling.Sample_set.draw rng field ~k ~count:n_samples in
  (topo, cost, samples, k)

let bechamel_table tests =
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 2.) ~kde:None ~stabilize:false
      ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let print_row (name, ols) =
    match Analyze.OLS.estimates ols with
    | Some (est :: _) ->
        Format.printf "%-40s %10.2f ms/solve@." name (est /. 1e6)
    | Some [] | None -> Format.printf "%-40s (no estimate)@." name
  in
  List.iter print_row rows

let run_lp_timing () =
  Format.printf "@.######## LP solve times (Other Results) ########@.";
  let sizes =
    if !quick then [ (40, 10, 8) ] else [ (50, 15, 10); (100, 30, 20) ]
  in
  let tests =
    List.concat_map
      (fun (n, m, k) ->
        let topo, cost, samples, k = lp_instance ~n ~n_samples:m ~k in
        let anchor =
          Prospector.Plan.expected_collection_mj topo cost
            (Prospector.Proof_exec.min_bandwidth_plan topo)
        in
        let budget = 1.2 *. anchor in
        let tag name = Printf.sprintf "%s n=%d samples=%d k=%d" name n m k in
        [
          Test.make ~name:(tag "greedy")
            (Staged.stage (fun () ->
                 ignore (Prospector.Greedy.plan topo cost samples ~budget)));
          Test.make ~name:(tag "lp-lf")
            (Staged.stage (fun () ->
                 ignore (Prospector.Lp_no_lf.plan topo cost samples ~budget)));
          Test.make ~name:(tag "lp+lf")
            (Staged.stage (fun () ->
                 ignore (Prospector.Lp_lf.plan topo cost samples ~budget ~k)));
        ])
      sizes
  in
  bechamel_table (Test.make_grouped ~name:"planners" tests);
  (* PROSPECTOR-PROOF is too slow for micro-benchmarking; report wall
     clock over a single solve, as the paper does for CPLEX. *)
  let n, m, k = if !quick then (25, 6, 5) else (40, 10, 8) in
  let topo, cost, samples, k = lp_instance ~n ~n_samples:m ~k in
  let anchor =
    Prospector.Plan.expected_collection_mj topo cost
      (Prospector.Proof_exec.min_bandwidth_plan topo)
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Prospector.Lp_proof.plan topo cost samples ~budget:(1.5 *. anchor) ~k
  in
  Format.printf "%-40s %10.2f ms/solve (wall clock)@."
    (Printf.sprintf "lp-proof n=%d samples=%d k=%d" n m k)
    (1000. *. (Unix.gettimeofday () -. t0));
  match r.Prospector.Lp_proof.lp_stats with
  | Some s ->
      Format.printf "  (simplex: %d iterations, %d refactorizations)@."
        s.Lp.Revised.iterations s.Lp.Revised.refactorizations
  | None -> ()

(* ---- machine-readable perf record (--json) ----

   Wall-clock timings plus simplex iteration counts for the LP planner
   suite, and a warm-vs-cold comparison on a perturbed planning LP.  The
   output is committed as BENCH_PR<n>.json so later PRs have a perf
   trajectory to regress against; keep the shape stable. *)

let median l =
  let a = List.sort Float.compare l in
  List.nth a (List.length a / 2)

let time_solves ~reps f =
  ignore (f ()) (* warmup *);
  let times = ref [] and iters = ref 0 in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let stats = f () in
    times := (1000. *. (Unix.gettimeofday () -. t0)) :: !times;
    match (stats : Lp.Revised.stats option) with
    | Some s -> iters := s.Lp.Revised.iterations
    | None -> ()
  done;
  (median !times, !iters)

(* The planner-suite timing rows shared by the [--json] record and the
   [telemetry] record: median wall-clock and final iteration count for
   lp-lf and lp+lf at each instance size. *)
let solver_rows sizes =
  List.concat_map
    (fun (n, m, k) ->
      let topo, cost, samples, k = lp_instance ~n ~n_samples:m ~k in
      let anchor =
        Prospector.Plan.expected_collection_mj topo cost
          (Prospector.Proof_exec.min_bandwidth_plan topo)
      in
      let budget = 1.2 *. anchor in
      let reps = if n >= 100 then 5 else 9 in
      let row name stats_of =
        let ms, iters = time_solves ~reps stats_of in
        Printf.sprintf
          {|    {"name": "%s", "n": %d, "samples": %d, "k": %d, "ms_per_solve": %.3f, "iterations": %d}|}
          name n m k ms iters
      in
      [
        row "lp-lf" (fun () ->
            (Prospector.Lp_no_lf.plan topo cost samples ~budget)
              .Prospector.Lp_no_lf.lp_stats);
        row "lp+lf" (fun () ->
            (Prospector.Lp_lf.plan topo cost samples ~budget ~k)
              .Prospector.Lp_lf.lp_stats);
      ])
    sizes

let run_json_bench path =
  Format.printf "@.######## JSON perf record -> %s ########@." path;
  (* Open the output before measuring so a bad path fails fast. *)
  let oc = open_out path in
  let solver_rows = solver_rows [ (50, 15, 10); (100, 30, 20) ] in
  (* Warm-started replanning: solve a planning LP, perturb the energy
     budget, and re-solve both cold and warm from the first solve's basis. *)
  let n, m, k = (100, 30, 20) in
  let topo, cost, samples, k = lp_instance ~n ~n_samples:m ~k in
  let anchor =
    Prospector.Plan.expected_collection_mj topo cost
      (Prospector.Proof_exec.min_bandwidth_plan topo)
  in
  let budget = 1.2 *. anchor in
  let first = Prospector.Lp_lf.plan topo cost samples ~budget ~k in
  let perturbed = 1.05 *. budget in
  let iters_of (r : Prospector.Lp_lf.result) =
    match r.Prospector.Lp_lf.lp_stats with
    | Some s -> s.Lp.Revised.iterations
    | None -> 0
  in
  let t0 = Unix.gettimeofday () in
  let cold = Prospector.Lp_lf.plan topo cost samples ~budget:perturbed ~k in
  let cold_ms = 1000. *. (Unix.gettimeofday () -. t0) in
  let t0 = Unix.gettimeofday () in
  let warm =
    Prospector.Lp_lf.plan ?warm_start:first.Prospector.Lp_lf.basis topo cost
      samples ~budget:perturbed ~k
  in
  let warm_ms = 1000. *. (Unix.gettimeofday () -. t0) in
  let obj_gap =
    Float.abs
      (cold.Prospector.Lp_lf.lp_objective -. warm.Prospector.Lp_lf.lp_objective)
  in
  Printf.fprintf oc
    {|{
  "seed": %d,
  "lp_solve_times": [
%s
  ],
  "pr1_seed_baseline": {
    "comment": "pre-PR1 solver (full Dantzig pricing, cold starts) on the same instances/harness/machine, recorded when PR1 landed",
    "lp_solve_times": [
      {"name": "lp-lf", "n": 50, "samples": 15, "k": 10, "ms_per_solve": 0.759, "iterations": 58},
      {"name": "lp+lf", "n": 50, "samples": 15, "k": 10, "ms_per_solve": 8.983, "iterations": 243},
      {"name": "lp-lf", "n": 100, "samples": 30, "k": 20, "ms_per_solve": 2.004, "iterations": 132},
      {"name": "lp+lf", "n": 100, "samples": 30, "k": 20, "ms_per_solve": 94.908, "iterations": 809}
    ]
  },
  "warm_start_replan": {
    "instance": {"n": %d, "samples": %d, "k": %d, "budget_perturbation": 1.05},
    "cold_ms": %.3f,
    "cold_iterations": %d,
    "warm_ms": %.3f,
    "warm_iterations": %d,
    "warm_cold_iteration_ratio": %.4f,
    "objective_abs_gap": %.6g
  }
}
|}
    !seed
    (String.concat ",\n" solver_rows)
    n m k cold_ms (iters_of cold) warm_ms (iters_of warm)
    (float_of_int (iters_of warm) /. Float.max 1. (float_of_int (iters_of cold)))
    obj_gap;
  close_out oc;
  Format.printf "cold: %.2f ms (%d iterations)  warm: %.2f ms (%d iterations)@."
    cold_ms (iters_of cold) warm_ms (iters_of warm)

(* ---- certification-overhead record (certify -> BENCH_PR3.json) ----

   What the certified fallback chain costs on the exact LP+LF models the
   planner solves: plain solve vs solve + independent certification, the
   numerical-drift refactorization counters, and a probe that the dense
   rescue stage engages when the revised solver is starved.  Acceptance:
   certification overhead below 5% of solve time. *)

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (1000. *. (Unix.gettimeofday () -. t0), r)

let run_certify_bench path =
  Format.printf "@.######## Certification overhead -> %s ########@." path;
  let oc = open_out path in
  let sizes =
    if !quick then [ (40, 10, 8) ] else [ (50, 15, 10); (100, 30, 20) ]
  in
  let rows =
    List.map
      (fun (n, m, k) ->
        let topo, cost, samples, k = lp_instance ~n ~n_samples:m ~k in
        let anchor =
          Prospector.Plan.expected_collection_mj topo cost
            (Prospector.Proof_exec.min_bandwidth_plan topo)
        in
        let budget = 1.2 *. anchor in
        let model = Prospector.Lp_lf.lp_model topo cost samples ~budget ~k in
        (* Time solver and checker separately on the lowered problem (the
           same pair {!Lp.Model.solve_certified} runs); subtracting two
           noisy end-to-end timings would drown the checker's cost. *)
        let prob = Lp.Model.to_problem model in
        let reps = if n >= 100 then 7 else 15 in
        ignore (Lp.Revised.solve prob) (* warmup *);
        let solve_times = ref [] and cert_times = ref [] in
        let res = ref (Lp.Revised.solve prob) and report = ref None in
        for _ = 1 to reps do
          let ms, r = time_ms (fun () -> Lp.Revised.solve prob) in
          solve_times := ms :: !solve_times;
          res := r;
          let ms, rep =
            time_ms (fun () ->
                Lp.Certify.certify_optimal prob ~x:!res.Lp.Revised.x
                  ~duals:!res.Lp.Revised.duals)
          in
          cert_times := ms :: !cert_times;
          report := Some rep
        done;
        let solve_ms = median !solve_times and cert_ms = median !cert_times in
        let overhead_pct = 100. *. cert_ms /. solve_ms in
        let stats = !res.Lp.Revised.stats in
        let drift = stats.Lp.Revised.drift_refactorizations
        and growth = stats.Lp.Revised.growth_refactorizations in
        let certified, gap =
          match !report with
          | Some r -> (r.Lp.Certify.certified, r.Lp.Certify.duality_gap)
          | None -> (false, Float.nan)
        in
        Format.printf
          "lp+lf n=%d samples=%d k=%d: solve %.3f ms, certify %.4f ms \
           (%.2f%%), certified=%b, drift/growth refactors %d/%d@."
          n m k solve_ms cert_ms overhead_pct certified drift growth;
        ( overhead_pct,
          Printf.sprintf
            {|    {"planner": "lp+lf", "n": %d, "samples": %d, "k": %d, "solve_ms": %.4f, "certify_ms": %.4f, "overhead_pct": %.3f, "certified": %b, "duality_gap": %.6g, "drift_refactorizations": %d, "growth_refactorizations": %d}|}
            n m k solve_ms cert_ms overhead_pct certified gap drift growth ))
      sizes
  in
  let max_overhead =
    List.fold_left (fun acc (p, _) -> Float.max acc p) neg_infinity rows
  in
  (* Fallback probe: starved revised solver is rejected end to end; an
     expired deadline starves only the revised stage, so the dense
     reference must rescue (and certify) the solve. *)
  let n, m, k = (40, 10, 8) in
  let topo, cost, samples, k = lp_instance ~n ~n_samples:m ~k in
  let anchor =
    Prospector.Plan.expected_collection_mj topo cost
      (Prospector.Proof_exec.min_bandwidth_plan topo)
  in
  let model =
    Prospector.Lp_lf.lp_model topo cost samples ~budget:(1.2 *. anchor) ~k
  in
  let starved_rejected =
    match Prospector.Robust_plan.solve ~max_iterations:0 model with
    | Error (Prospector.Robust_plan.No_certified_solution _) -> true
    | _ -> false
  in
  let dense_ms, dense_rescued =
    time_ms (fun () ->
        match Prospector.Robust_plan.solve ~deadline:0. model with
        | Ok r ->
            r.Prospector.Robust_plan.provenance
            = Prospector.Robust_plan.Certified_dense
        | Error _ -> false)
  in
  Format.printf
    "fallback probe: starved rejected=%b, dense rescue=%b (%.2f ms)@."
    starved_rejected dense_rescued dense_ms;
  Printf.fprintf oc
    {|{
  "seed": %d,
  "certification_overhead": [
%s
  ],
  "acceptance": {"threshold_pct": 5.0, "max_overhead_pct": %.3f, "pass": %b},
  "fallback_probe": {
    "instance": {"n": %d, "samples": %d, "k": %d},
    "starved_solver_rejected": %b,
    "expired_deadline_dense_rescue": %b,
    "dense_rescue_ms": %.3f
  }
}
|}
    !seed
    (String.concat ",\n" (List.map snd rows))
    max_overhead
    (max_overhead < 5.0)
    n m k starved_rejected dense_rescued dense_ms;
  close_out oc

(* ---- telemetry record (telemetry -> BENCH_PR4.json) ----

   Exercises the lib/obs stack end to end: the LP planner suite with
   metrics armed (so the registered solve-time histogram fills), a lossy
   simulated collection whose per-epoch spans are read back out of the
   trace sink and cross-checked against the engine's energy ledger, and an
   overhead probe timing fig3 --quick with telemetry off vs on.
   Acceptance: telemetry overhead below 2%. *)

let run_telemetry_bench path =
  Format.printf "@.######## Telemetry record -> %s ########@." path;
  let oc = open_out path in
  (* Overhead probe first, from a clean slate: fig3 --quick is the paper's
     headline experiment and crosses every instrumented layer. *)
  (* Untimed warmup, then interleaved off/on reps so allocator and GC
     drift across the probe hits both sides equally. *)
  ignore (Experiments.Fig3.run ?quick:(Some true) ~seed:!seed ());
  let fig3_ms ~telemetry =
    Obs.Metrics.set_enabled telemetry;
    if telemetry then Obs.Trace.install (Some (Obs.Trace.create ()));
    let t0 = Unix.gettimeofday () in
    ignore (Experiments.Fig3.run ?quick:(Some true) ~seed:!seed ());
    let ms = 1000. *. (Unix.gettimeofday () -. t0) in
    Obs.Metrics.set_enabled false;
    Obs.Trace.install None;
    ms
  in
  (* Machine noise on a ~60 ms workload comes in multi-second CPU-speed
     phases several times larger than the effect being measured, so
     whole-side aggregates (means, medians, even minima) never converge.
     Instead: back-to-back pairs — the two runs of a pair share a phase,
     so their difference isolates the overhead — with the within-pair
     order alternated to cancel any residual drift, and the median taken
     across pairs to shed the few pairs that straddle a phase boundary. *)
  let pairs = 25 in
  let off_times = ref [] and on_times = ref [] and diffs = ref [] in
  for i = 1 to pairs do
    let off, on =
      if i mod 2 = 0 then
        let off = fig3_ms ~telemetry:false in
        (off, fig3_ms ~telemetry:true)
      else
        let on = fig3_ms ~telemetry:true in
        (fig3_ms ~telemetry:false, on)
    in
    off_times := off :: !off_times;
    on_times := on :: !on_times;
    diffs := (100. *. (on -. off) /. off) :: !diffs
  done;
  let minimum l = List.fold_left Float.min infinity l in
  let disabled_ms = minimum !off_times in
  let enabled_ms = minimum !on_times in
  let overhead_pct = median !diffs in
  Format.printf
    "fig3 --quick: best %.1f ms off, %.1f ms on; median paired overhead \
     %+.2f%%@."
    disabled_ms enabled_ms overhead_pct;
  (* Everything below runs with telemetry armed and one sink collecting. *)
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  let sink = Obs.Trace.create () in
  Obs.Trace.install (Some sink);
  let lp_sizes =
    if !quick then [ (40, 10, 8) ] else [ (50, 15, 10); (100, 30, 20) ]
  in
  let rows = solver_rows lp_sizes in
  let solve_hist =
    match List.assoc_opt "lp.revised.solve_s" (Obs.Metrics.snapshot ()) with
    | Some (Obs.Metrics.Distribution d) ->
        let ms x = Obs.Json.Num (1000. *. x) in
        Obs.Json.Obj
          [
            ("count", Obs.Json.Num (float_of_int d.count));
            ("p50_ms", ms d.p50);
            ("p90_ms", ms d.p90);
            ("p99_ms", ms d.p99);
            ("max_ms", ms d.max);
          ]
    | _ -> Obs.Json.Null
  in
  (* Lossy collection workload: the fig3 network under Bernoulli frame
     drops, full-bandwidth NAIVE-k plan, one engine run per test epoch. *)
  let n = if !quick then 30 else 60 in
  let k = if !quick then 6 else 10 in
  let n_test = if !quick then 6 else 12 in
  let drop = 0.1 in
  let s =
    Experiments.Setup.uniform_gaussian ~seed:!seed ~n ~k
      ~n_samples:(if !quick then 5 else 10)
      ~n_test ()
  in
  let plan =
    Prospector.Plan.make s.Experiments.Setup.topo
      (Array.mapi
         (fun i size ->
           if i = s.Experiments.Setup.topo.Sensor.Topology.root then 0
           else Int.min size k)
         s.Experiments.Setup.topo.Sensor.Topology.subtree_size)
  in
  let fault = Simnet.Fault.bernoulli ~n ~drop in
  let rng = Rng.create (!seed * 6151) in
  let before = Obs.Trace.length sink in
  let engine_mj =
    Array.fold_left
      (fun acc readings ->
        let r =
          Prospector.Simnet_exec.collect s.Experiments.Setup.topo
            s.Experiments.Setup.mica ~fault:(fault, rng) plan
            ~k:s.Experiments.Setup.k ~readings
        in
        acc +. r.Prospector.Simnet_exec.total_mj)
      0. s.Experiments.Setup.test_epochs
  in
  let epoch_events =
    List.filteri (fun i _ -> i >= before) (Obs.Trace.events sink)
    |> List.filter (fun e -> e.Obs.Trace.kind = Obs.Trace.Epoch)
  in
  let num e key = Option.value ~default:0. (Obs.Trace.number e key) in
  let trace_mj =
    List.fold_left (fun acc e -> acc +. num e "energy_mj") 0. epoch_events
  in
  let epoch_rows =
    List.mapi
      (fun i e ->
        Obs.Json.Obj
          [
            ("epoch", Obs.Json.Num (float_of_int i));
            ("energy_mj", Obs.Json.Num (num e "energy_mj"));
            ("unicasts", Obs.Json.Num (num e "unicasts"));
            ("broadcasts", Obs.Json.Num (num e "broadcasts"));
            ("bytes", Obs.Json.Num (num e "bytes"));
            ("retransmissions", Obs.Json.Num (num e "retransmissions"));
            ("dropped", Obs.Json.Num (num e "dropped"));
            ("sim_time_s", Obs.Json.Num (num e "sim_time_s"));
          ])
      epoch_events
  in
  let energy_consistent =
    Float.abs (trace_mj -. engine_mj) <= 1e-6 *. Float.max 1. engine_mj
  in
  Format.printf
    "simnet: %d epochs, %.1f mJ by engine ledger, %.1f mJ by trace, \
     consistent=%b@."
    (List.length epoch_events)
    engine_mj trace_mj energy_consistent;
  (* Export the trace through both sinks' formats, then stand down. *)
  let events = Obs.Trace.events sink in
  Obs.Trace.to_file "OBS_TRACE.jsonl" events;
  Obs.Trace.to_csv_file "OBS_TRACE.csv" events;
  Obs.Metrics.set_enabled false;
  Obs.Trace.install None;
  let record =
    Obs.Json.Obj
      [
        ("schema_version", Obs.Json.Num 1.);
        ("seed", Obs.Json.Num (float_of_int !seed));
        ("quick", Obs.Json.Bool !quick);
        ( "lp_solve_times",
          Obs.Json.List
            (List.map
               (fun row -> Obs.Json.parse_exn (String.trim row))
               rows) );
        ("lp_solve_histogram", solve_hist);
        ( "simnet_epochs",
          Obs.Json.Obj
            [
              ( "instance",
                Obs.Json.Obj
                  [
                    ("n", Obs.Json.Num (float_of_int n));
                    ("k", Obs.Json.Num (float_of_int k));
                    ("drop", Obs.Json.Num drop);
                    ("epochs", Obs.Json.Num (float_of_int n_test));
                  ] );
              ("rows", Obs.Json.List epoch_rows);
              ("engine_total_mj", Obs.Json.Num engine_mj);
              ("trace_total_mj", Obs.Json.Num trace_mj);
              ("energy_consistent", Obs.Json.Bool energy_consistent);
            ] );
        ( "telemetry_overhead",
          Obs.Json.Obj
            [
              ("workload", Obs.Json.Str "fig3 --quick");
              ("reps", Obs.Json.Num 25.);
              ("disabled_ms", Obs.Json.Num disabled_ms);
              ("enabled_ms", Obs.Json.Num enabled_ms);
              ("overhead_pct", Obs.Json.Num overhead_pct);
              ("threshold_pct", Obs.Json.Num 2.);
              ("pass", Obs.Json.Bool (overhead_pct < 2.));
            ] );
        ("trace_files", Obs.Json.List
          [ Obs.Json.Str "OBS_TRACE.jsonl"; Obs.Json.Str "OBS_TRACE.csv" ]);
      ]
  in
  output_string oc (Obs.Json.to_string_pretty record);
  output_char oc '\n';
  close_out oc

(* ---- guarantee trade-off record (guarantee -> BENCH_GUARANTEE.json) ----

   The certified (eps, delta) bound as a function of energy budget: one
   fixed instance, a budget ladder, two confidence levels.  Each rung
   plans on one sample window and certifies on a disjoint one — the same
   discipline Robust_plan.plan_with_guarantee enforces — so the recorded
   eps is honest certified slack, not a resubstitution estimate.  A final
   escalation run records what budget the ladder had to reach to certify
   a fixed (eps, delta) target, the curve read in reverse. *)

let run_guarantee_bench path =
  Format.printf "@.######## Guarantee trade-off -> %s ########@." path;
  let oc = open_out path in
  let n = if !quick then 25 else 40 in
  let k = if !quick then 5 else 8 in
  let m = if !quick then 60 else 120 in
  let rng = Rng.create (!seed * 7919) in
  let layout = Sensor.Placement.uniform rng ~n ~width:200. ~height:200. () in
  let range = Sensor.Topology.min_connecting_range layout *. 1.25 in
  let topo = Sensor.Topology.build layout ~range in
  let cost = Sensor.Cost.of_mica2 topo Sensor.Mica2.default in
  let field =
    Sampling.Field.random_gaussian rng ~n ~mean_lo:20. ~mean_hi:30. ~sigma_lo:1.
      ~sigma_hi:4.
  in
  let plan_window = Sampling.Sample_set.draw rng field ~k ~count:m in
  let cert_window = Sampling.Sample_set.draw rng field ~k ~count:m in
  let anchor =
    Prospector.Plan.expected_collection_mj topo cost
      (Prospector.Proof_exec.min_bandwidth_plan topo)
  in
  let fractions = [ 0.2; 0.35; 0.5; 0.7; 0.9; 1.1 ] in
  let deltas = [ 1e-2; 1e-6 ] in
  let curve =
    List.concat_map
      (fun delta ->
        List.map
          (fun frac ->
            let budget = frac *. anchor in
            let r = Prospector.Lp_lf.plan topo cost plan_window ~budget ~k in
            let g =
              Prospector.Guarantee.compute ~delta
                ?report:r.Prospector.Lp_lf.certify
                ~objective:r.Prospector.Lp_lf.lp_objective topo cost
                r.Prospector.Lp_lf.plan ~k cert_window
            in
            Format.printf
              "delta=%g budget=%6.1f mJ: accuracy %.3f, eps %.3f, certified \
               lower %.3f (%s)@."
              delta budget g.Prospector.Guarantee.empirical_accuracy
              g.Prospector.Guarantee.eps g.Prospector.Guarantee.certified_lower
              (Prospector.Guarantee.family_to_string
                 g.Prospector.Guarantee.family);
            Obs.Json.Obj
              [
                ("delta", Obs.Json.Num delta);
                ("budget_mj", Obs.Json.Num budget);
                ("budget_fraction_of_full", Obs.Json.Num frac);
                ("guarantee", Prospector.Guarantee.to_json g);
              ])
          fractions)
      deltas
  in
  (* The curve read in reverse: fix the target, let the ladder find the
     budget. *)
  let eps_target = 0.35 and delta_target = 1e-3 in
  let both =
    Sampling.Sample_set.of_values ~k
      (Array.append plan_window.Sampling.Sample_set.values
         cert_window.Sampling.Sample_set.values)
  in
  let esc =
    Prospector.Robust_plan.plan_with_guarantee ~eps:eps_target
      ~delta:delta_target
      ~planner:(fun ~samples ~budget ->
        Prospector.Lp_lf.plan topo cost samples ~budget ~k)
      ~describe:(fun r ->
        ( r.Prospector.Lp_lf.plan,
          r.Prospector.Lp_lf.certify,
          Some r.Prospector.Lp_lf.lp_objective ))
      topo cost ~k both
      ~budget:(0.15 *. anchor)
  in
  let chosen = esc.Prospector.Robust_plan.chosen in
  Format.printf
    "escalation to (eps = %g, delta = %g): attained=%b after %d raises, \
     budget %.1f mJ, certified lower %.3f@."
    eps_target delta_target esc.Prospector.Robust_plan.attained
    esc.Prospector.Robust_plan.escalations chosen.Prospector.Robust_plan.budget
    chosen.Prospector.Robust_plan.guarantee
      .Prospector.Guarantee.certified_lower;
  let record =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "bench-guarantee/1");
        ("seed", Obs.Json.Num (float_of_int !seed));
        ("quick", Obs.Json.Bool !quick);
        ( "instance",
          Obs.Json.Obj
            [
              ("n", Obs.Json.Num (float_of_int n));
              ("k", Obs.Json.Num (float_of_int k));
              ("window", Obs.Json.Num (float_of_int m));
              ("full_collection_mj", Obs.Json.Num anchor);
            ] );
        ("curve", Obs.Json.List curve);
        ( "escalation",
          Obs.Json.Obj
            [
              ("target_eps", Obs.Json.Num eps_target);
              ("target_delta", Obs.Json.Num delta_target);
              ("attained", Obs.Json.Bool esc.Prospector.Robust_plan.attained);
              ( "escalations",
                Obs.Json.Num
                  (float_of_int esc.Prospector.Robust_plan.escalations) );
              ( "chosen_budget_mj",
                Obs.Json.Num chosen.Prospector.Robust_plan.budget );
              ( "guarantee",
                Prospector.Guarantee.to_json
                  chosen.Prospector.Robust_plan.guarantee );
            ] );
      ]
  in
  output_string oc (Obs.Json.to_string_pretty record);
  close_out oc

(* ---- churn recovery record (churn -> BENCH_CHURN.json) ----

   What self-healing costs when a subtree dies: per-victim plan surgery
   (warm-started, as the controller runs it) timed against the full
   re-plan alternative, plus one controller campaign under a
   crash-restart schedule for the end-to-end recovery energy and the
   detection latency.  The energy figures are model-derived and
   deterministic per seed, so the gate holds them exact; the surgery
   latency is gated like any other solve time. *)

let run_churn_bench path =
  Format.printf "@.######## Churn recovery -> %s ########@." path;
  let oc = open_out path in
  let n = if !quick then 25 else 40 in
  let k = if !quick then 5 else 8 in
  let m = if !quick then 80 else 160 in
  let rng = Rng.create (!seed * 104729) in
  let layout = Sensor.Placement.uniform rng ~n ~width:200. ~height:200. () in
  let range = Sensor.Topology.min_connecting_range layout *. 1.25 in
  let topo = Sensor.Topology.build layout ~range in
  let mica = Sensor.Mica2.default in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let field =
    Sampling.Field.random_gaussian rng ~n ~mean_lo:20. ~mean_hi:30. ~sigma_lo:1.
      ~sigma_hi:4.
  in
  let samples = Sampling.Sample_set.draw rng field ~k ~count:m in
  let anchor =
    Prospector.Plan.expected_collection_mj topo cost
      (Prospector.Proof_exec.min_bandwidth_plan topo)
  in
  let budget = 0.7 *. anchor in
  let first = Prospector.Lp_lf.plan topo cost samples ~budget ~k in
  let initial = first.Prospector.Lp_lf.plan in
  let full_install = Prospector.Plan.install_mj topo mica initial in
  let root = topo.Sensor.Topology.root in
  let by_subtree_desc a b =
    let sa = topo.Sensor.Topology.subtree_size.(a)
    and sb = topo.Sensor.Topology.subtree_size.(b) in
    if sa <> sb then Int.compare sb sa
    else Int.compare a b (* earlier id first on ties *)
  in
  let victims =
    Prospector.Plan.participants topo initial
    |> List.filter (fun i -> i <> root)
    |> List.sort by_subtree_desc
    |> List.filteri (fun i _ -> i < if !quick then 4 else 8)
  in
  (* Per-victim surgery, warm-started from the undamaged solve exactly as
     the controller replays it.  Repeat each surgery a few times and take
     the per-victim median latency; the energies are identical across
     reps (deterministic), so only the timing needs the repetition. *)
  let reps = 5 in
  let surgery_rows, repair_times =
    List.fold_left
      (fun (rows, times) v ->
        let outcomes =
          List.init reps (fun _ ->
              Prospector.Repair.surgery
                ?warm_start:first.Prospector.Lp_lf.basis ~delta:1e-4 topo cost
                mica samples ~current:initial ~dead:[ v ] ~k ~budget)
        in
        match List.hd outcomes with
        | Prospector.Repair.Repaired r ->
            let ms =
              median
                (List.filter_map
                   (function
                     | Prospector.Repair.Repaired r ->
                         Some (1000. *. r.Prospector.Repair.repair_s)
                     | _ -> None)
                   outcomes)
            in
            let repaired_install =
              Prospector.Plan.install_mj topo mica r.Prospector.Repair.plan
            in
            Format.printf
              "victim %2d (subtree %2d): repair %6.2f ms, delta install %.3f \
               mJ vs %.3f mJ full re-install, floor %.3f@."
              v
              topo.Sensor.Topology.subtree_size.(v)
              ms r.Prospector.Repair.delta_install_mj repaired_install
              r.Prospector.Repair.guarantee.Prospector.Guarantee.certified_lower;
            let row =
              Obs.Json.Obj
                [
                  ("victim", Obs.Json.Num (float_of_int v));
                  ( "subtree",
                    Obs.Json.Num
                      (float_of_int topo.Sensor.Topology.subtree_size.(v)) );
                  ( "delta_install_mj",
                    Obs.Json.Num r.Prospector.Repair.delta_install_mj );
                  ("repaired_full_install", Obs.Json.Num repaired_install);
                  ( "changed_nodes",
                    Obs.Json.Num
                      (float_of_int (List.length r.Prospector.Repair.changed))
                  );
                  ( "degraded_floor",
                    Obs.Json.Num
                      r.Prospector.Repair.guarantee
                        .Prospector.Guarantee.certified_lower );
                ]
            in
            (row :: rows, ms :: times)
        | _ ->
            (* Surfaced, not silently dropped: a victim whose repair was
               refused would shrink the medians below. *)
            Format.printf "victim %2d: repair refused — excluded@." v;
            (rows, times))
      ([], []) victims
  in
  let surgery_rows = List.rev surgery_rows in
  let repair_ms = median repair_times in
  (* One controller campaign: crash at epoch 2, restart at epoch 6, probe
     sweep alongside the installed plan as in the chaos harness. *)
  let epochs = 10 and down_epoch = 2 and up_epoch = 6 in
  let victim = List.hd victims in
  let ctrl =
    Prospector.Repair.create ~confirm_after:2 ~clear_after:2 ~delta:1e-4 topo
      cost mica ~initial ~k ~budget ()
  in
  let probe =
    Prospector.Plan.make topo
      (Array.mapi
         (fun i size -> if i = root then 0 else Int.min size k)
         topo.Sensor.Topology.subtree_size)
  in
  let erng = Rng.create ((!seed * 131) + 17) in
  let first_repair = ref None and repaired_at = ref [] in
  for e = 0 to epochs - 1 do
    let base = Simnet.Fault.none ~n in
    let fault =
      if e >= down_epoch && e < up_epoch then
        Simnet.Fault.with_crashes base [ (victim, 0., infinity) ]
      else base
    in
    let readings = field.Sampling.Field.draw erng in
    let run =
      Prospector.Simnet_exec.collect topo mica
        ~fault:(fault, Rng.create ((!seed * 37) + (2 * e)))
        (Prospector.Repair.plan ctrl) ~k ~readings
    in
    let sweep =
      Prospector.Simnet_exec.collect topo mica
        ~fault:(fault, Rng.create ((!seed * 37) + (2 * e) + 1))
        probe ~k ~readings
    in
    let dark =
      List.sort_uniq Int.compare
        (run.Prospector.Simnet_exec.dark @ sweep.Prospector.Simnet_exec.dark)
    in
    match Prospector.Repair.observe ctrl samples ~dark with
    | Prospector.Repair.Repaired _ ->
        if !first_repair = None then first_repair := Some e;
        repaired_at := e :: !repaired_at
    | _ -> ()
  done;
  let detection_epochs =
    match !first_repair with
    | Some e -> float_of_int (e - down_epoch)
    | None -> -1. (* never: the victim participates, so a repair lands *)
  in
  let recovery_mj = Prospector.Repair.repair_energy_mj ctrl in
  let full_replan_install_mj =
    (* what the same campaign would have paid re-disseminating the whole
       plan at every repair *)
    float_of_int (Prospector.Repair.repairs ctrl) *. full_install
  in
  Format.printf
    "campaign: %d repairs (epochs %s), detection %.0f epochs, recovery %.3f \
     mJ vs %.3f mJ full re-installs@."
    (Prospector.Repair.repairs ctrl)
    (String.concat ","
       (List.rev_map string_of_int !repaired_at))
    detection_epochs recovery_mj full_replan_install_mj;
  let record =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "bench-churn/1");
        ("seed", Obs.Json.Num (float_of_int !seed));
        ("quick", Obs.Json.Bool !quick);
        ( "instance",
          Obs.Json.Obj
            [
              ("n", Obs.Json.Num (float_of_int n));
              ("k", Obs.Json.Num (float_of_int k));
              ("window", Obs.Json.Num (float_of_int m));
              ("budget_mj", Obs.Json.Num budget);
              ("initial_full_install", Obs.Json.Num full_install);
            ] );
        ( "surgery",
          Obs.Json.Obj
            [
              ("victims", Obs.Json.Num (float_of_int (List.length victims)));
              ("repair_ms", Obs.Json.Num repair_ms);
              ("rows", Obs.Json.List surgery_rows);
            ] );
        ( "campaign",
          Obs.Json.Obj
            [
              ("schedule", Obs.Json.Str "crash-restart");
              ("epochs", Obs.Json.Num (float_of_int epochs));
              ("victim", Obs.Json.Num (float_of_int victim));
              ( "repairs",
                Obs.Json.Num (float_of_int (Prospector.Repair.repairs ctrl)) );
              ("detection_epochs", Obs.Json.Num detection_epochs);
              ("recovery_mj", Obs.Json.Num recovery_mj);
              ("full_replan_install", Obs.Json.Num full_replan_install_mj);
            ] );
      ]
  in
  output_string oc (Obs.Json.to_string_pretty record);
  output_char oc '\n';
  close_out oc

(* ---- Serving-layer benchmark (BENCH_SERVE.json) ----

   Measures the three serving regimes of the multi-tenant layer over a
   seeded query stream — cold (cache and pool disabled), exact cache hits,
   and pooled-warm misses — plus the mixed hit-traffic workload the
   acceptance criterion speaks about (3 exact repeats : 1 fresh perturbed
   budget).  The domain-scaling rows use a deterministic greedy-makespan
   model over the measured per-query cold solve times (this host may have
   a single core — [host_cores] records it), while a real 4-domain fan-out
   smoke run checks the parallel path end to end.  Latency keys are
   tolerance-gated; the cache/pool tallies are exact-gated (the stream is
   seeded, so a count drift is a behavior change, not noise). *)

let run_serve_bench path =
  Format.printf "@.######## Serving layer -> %s ########@." path;
  let tenants = 3 in
  let n = if !quick then 30 else 60 in
  let k = if !quick then 4 else 6 in
  let m = if !quick then 10 else 16 in
  let q_per_tenant = if !quick then 6 else 10 in
  let rng = Rng.create (!seed * 7919) in
  let mica = Sensor.Mica2.default in
  let mk_tenant () =
    let layout = Sensor.Placement.uniform rng ~n ~width:200. ~height:200. () in
    let range = Sensor.Topology.min_connecting_range layout *. 1.2 in
    let topo = Sensor.Topology.build layout ~range in
    let cost = Sensor.Cost.of_mica2 topo mica in
    let field =
      Sampling.Field.random_gaussian rng ~n ~mean_lo:20. ~mean_hi:30.
        ~sigma_lo:1. ~sigma_hi:4.
    in
    let samples = Sampling.Sample_set.draw rng field ~k ~count:m in
    let base =
      0.55
      *. Prospector.Plan.expected_collection_mj topo cost
           (Prospector.Proof_exec.min_bandwidth_plan topo)
    in
    (topo, cost, samples, base)
  in
  let nets = List.init tenants (fun _ -> mk_tenant ()) in
  let fresh_server ~cache ~pool ~domains =
    let config =
      {
        Serve.Server.default_config with
        cache_capacity = cache;
        pool_capacity = pool;
        batch = 16;
        domains;
      }
    in
    let t = Serve.Server.create ~config () in
    List.iter
      (fun (topo, cost, samples, _) ->
        ignore (Serve.Server.register t topo cost samples))
      nets;
    t
  in
  (* budget ladders per tenant: generation [g] holds [q_per_tenant] fresh
     budgets; the stream interleaves tenants so batches are multi-tenant *)
  let budgets_of g =
    List.concat
      (List.init q_per_tenant (fun i ->
           List.mapi
             (fun t (_, _, _, base) ->
               let step = ((g * q_per_tenant) + i) * 2 in
               Serve.Server.query ~network:t ~k
                 (base *. (1. +. (0.001 *. float_of_int step))))
             nets))
  in
  let gen0 = Array.of_list (budgets_of 0) in
  let gen1 = Array.of_list (budgets_of 1) in
  let gen2 = Array.of_list (budgets_of 2) in
  let served_exn label o =
    match o with
    | Serve.Server.Served r -> r
    | Serve.Server.Refused reason ->
        Printf.eprintf "serve bench: %s refused: %s\n%!" label reason;
        exit 1
  in
  let timed_run label t queries =
    let t0 = Unix.gettimeofday () in
    let out = Serve.Server.run t queries in
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    let responses = Array.map (served_exn label) out in
    (ms /. float_of_int (Array.length queries), responses)
  in
  (* cold: no cache, no pool — every query is a scratch solve *)
  let cold_server = fresh_server ~cache:0 ~pool:0 ~domains:1 in
  let cold_ms, cold_responses = timed_run "cold" cold_server gen0 in
  let solve_times_ms =
    Array.to_list (Array.map (fun r -> r.Serve.Server.solve_ms) cold_responses)
  in
  (* the serving configuration: prime with gen0, then measure the regimes *)
  let main = fresh_server ~cache:256 ~pool:8 ~domains:1 in
  let _, _ = timed_run "prime" main gen0 in
  let cache_ms, cache_responses = timed_run "cached" main gen0 in
  Array.iter
    (fun (r : Serve.Server.response) ->
      match r.source with
      | Serve.Server.Cache_hit -> ()
      | s ->
          Printf.eprintf "serve bench: expected a cache hit, got %s\n%!"
            (Serve.Server.source_to_string s);
          exit 1)
    cache_responses;
  let pooled_ms, pooled_responses = timed_run "pooled" main gen1 in
  let pooled_warm =
    Array.for_all
      (fun (r : Serve.Server.response) ->
        match r.source with
        | Serve.Server.Pool_warm | Serve.Server.Range_hit -> true
        | _ -> false)
      pooled_responses
  in
  (* hit traffic: per fresh perturbed budget, two exact repeats plus an
     identical in-flight duplicate (same admission batch, so it coalesces
     onto the fresh solve) — 3 solve-free serves per solve *)
  let hit_stream =
    Array.concat
      (List.concat
         (List.init (Array.length gen2) (fun i ->
              [
                [| gen0.(i mod Array.length gen0) |];
                [| gen1.(i mod Array.length gen1) |];
                [| gen2.(i) |];
                [| gen2.(i) |];
              ])))
  in
  let hit_ms, _ = timed_run "hit-traffic" main hit_stream in
  let speedup_hit = cold_ms /. hit_ms in
  (* domain scaling: deterministic greedy makespan over the measured cold
     per-query solve times — each task goes to the least-loaded domain in
     admission order (ties to the lowest slot), exactly the work the
     atomic-cursor claim order distributes *)
  let makespan ~domains =
    let load = Array.make domains 0. in
    List.iter
      (fun ms ->
        let slot = ref 0 in
        for d = 1 to domains - 1 do
          if load.(d) < load.(!slot) then slot := d
        done;
        load.(!slot) <- load.(!slot) +. ms)
      solve_times_ms;
    Array.fold_left Float.max 0. load
  in
  let scaling_domains = [ 1; 2; 4; 8 ] in
  let makespans = List.map (fun d -> (d, makespan ~domains:d)) scaling_domains in
  let speedup_1_to_4 =
    List.assoc 1 makespans /. List.assoc 4 makespans
  in
  (* real fan-out smoke: the parallel path must serve the same stream *)
  let par = fresh_server ~cache:256 ~pool:8 ~domains:4 in
  let par_out = Serve.Server.run par gen0 in
  Array.iter (fun o -> ignore (served_exn "parallel" o)) par_out;
  let s = Serve.Server.stats main in
  let cache_misses = s.range_hits + s.pool_hits + s.cold_misses in
  let host_cores = Domain.recommended_domain_count () in
  let pass_5x = speedup_hit >= 5. in
  let pass_scaling = speedup_1_to_4 > 1.5 in
  let num v = Obs.Json.Num v in
  let int v = Obs.Json.Num (float_of_int v) in
  let record =
    Obs.Json.Obj
      [
        ("schema_version", Obs.Json.Str "bench-serve/1");
        ("seed", int !seed);
        ("quick", Obs.Json.Bool !quick);
        ("host_cores", int host_cores);
        ( "workload",
          Obs.Json.Obj
            [
              ("tenants", int tenants);
              ("n", int n);
              ("k", int k);
              ("window", int m);
              ("queries_per_phase", int (Array.length gen0));
            ] );
        ( "phases",
          Obs.Json.Obj
            [
              ("cold", Obs.Json.Obj [ ("ms_per_query", num cold_ms) ]);
              ("cached", Obs.Json.Obj [ ("cache_hit_ms", num cache_ms) ]);
              ( "pooled",
                Obs.Json.Obj
                  [
                    ("pooled_warm_ms", num pooled_ms);
                    ("all_warm", Obs.Json.Bool pooled_warm);
                  ] );
              ( "hit_traffic",
                Obs.Json.Obj
                  [
                    ("ms_per_query", num hit_ms);
                    ("speedup_vs_cold", num speedup_hit);
                    ("pass_5x", Obs.Json.Bool pass_5x);
                  ] );
            ] );
        ( "scaling",
          Obs.Json.Obj
            [
              ( "model",
                Obs.Json.Str
                  "greedy makespan over measured per-query cold solve times" );
              ( "rows",
                Obs.Json.List
                  (List.map
                     (fun (d, mk) ->
                       Obs.Json.Obj
                         [ ("domains", int d); ("makespan_ms", num mk) ])
                     makespans) );
              ("speedup_1_to_4", num speedup_1_to_4);
              ("pass_1_5x", Obs.Json.Bool pass_scaling);
            ] );
        ( "counters",
          Obs.Json.Obj
            [
              ("cache_hits", int s.cache_hits);
              ("cache_misses", int cache_misses);
              ("range_hits", int s.range_hits);
              ("pool_hits", int s.pool_hits);
              ("cold_misses", int s.cold_misses);
              ("coalesced", int s.coalesced);
              ("evictions", int s.evictions);
              ("refused", int s.refused);
            ] );
      ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string_pretty record);
  output_char oc '\n';
  close_out oc;
  Format.printf
    "cold %.3f ms/q | cache hit %.5f ms/q | pooled warm %.3f ms/q@." cold_ms
    cache_ms pooled_ms;
  Format.printf
    "hit traffic %.4f ms/q -> %.1fx vs cold (need >= 5x) | scaling 1->4: \
     %.2fx (need > 1.5x, modeled; host has %d core(s))@."
    hit_ms speedup_hit speedup_1_to_4 host_cores;
  if not (pass_5x && pass_scaling) then begin
    Printf.eprintf "serve bench: acceptance thresholds not met\n%!";
    exit 1
  end

let all_experiments =
  [
    ("table1", `Plain (fun () -> Experiments.Table1.run ()));
    ("fig3", `Fig Experiments.Fig3.run);
    ("fig4", `Fig Experiments.Fig4.run);
    ("fig5", `Fig Experiments.Fig5.run);
    ("fig7", `Fig Experiments.Fig7.run);
    ("fig8", `Fig Experiments.Fig8.run);
    ("fig9", `Fig Experiments.Fig9.run);
    ("samples", `Fig Experiments.Sample_size.run);
    ("failures", `Fig Experiments.Ablation_failures.run);
    ("loss", `Fig Experiments.Ablation_loss.run);
    ("drift", `Fig Experiments.Ablation_drift.run);
    ("rounding", `Fig Experiments.Ablation_rounding.run);
    ("generalized", `Fig Experiments.Generalized.run);
    ("lifetime", `Fig Experiments.Lifetime_exp.run);
    ("modelgen", `Fig Experiments.Model_sampling.run);
    ("lptime", `Plain run_lp_timing);
    ("certify", `Plain (fun () -> run_certify_bench (out_or "BENCH_PR3.json")));
    ( "telemetry",
      `Plain (fun () -> run_telemetry_bench (out_or "BENCH_PR4.json")) );
    ( "guarantee",
      `Plain (fun () -> run_guarantee_bench (out_or "BENCH_GUARANTEE.json")) );
    ("churn", `Plain (fun () -> run_churn_bench (out_or "BENCH_CHURN.json")));
    ("serve", `Plain (fun () -> run_serve_bench (out_or "BENCH_SERVE.json")));
  ]

let usage () =
  print_endline
    "usage: main.exe [--quick] [--seed N] [--csv DIR] [--json PATH] [--out \
     PATH] [experiment...]";
  Printf.printf "experiments: %s\n"
    (String.concat " " (List.map fst all_experiments));
  print_endline
    "--json PATH writes machine-readable LP solve-time and warm-start\n\
     results to PATH; with no experiment names it runs only that pass.\n\
     --out PATH overrides where the record-writing experiments (certify,\n\
     telemetry, guarantee, churn, serve) write their JSON.";
  exit 1

let () =
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--csv" :: dir :: rest ->
        csv_dir := Some dir;
        parse rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse rest
    | "--out" :: path :: rest ->
        out_path := Some path;
        parse rest
    | "--seed" :: v :: rest ->
        (match int_of_string_opt v with
        | Some s -> seed := s
        | None -> usage ());
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | name :: rest ->
        if List.mem_assoc name all_experiments then begin
          selected := name :: !selected;
          parse rest
        end
        else begin
          Printf.printf "unknown experiment: %s\n" name;
          usage ()
        end
  in
  parse (List.tl (Array.to_list Sys.argv));
  let to_run =
    match (List.rev !selected, !json_path) with
    | [], Some _ -> []  (* --json alone: just the perf record *)
    | [], None -> List.map fst all_experiments
    | names, _ -> names
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc name all_experiments with
      | `Plain f -> f ()
      | `Fig runner -> run_figures name runner)
    to_run;
  Option.iter run_json_bench !json_path;
  Format.printf "@.All requested experiments completed in %.1fs.@."
    (Unix.gettimeofday () -. t0)

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md for the experiment index), plus the
   LP solve-time measurements reported in "Other Results".

   Usage:
     dune exec bench/main.exe                 -- everything, full size
     dune exec bench/main.exe -- --quick      -- everything, small instances
     dune exec bench/main.exe -- fig3 fig5    -- selected experiments
     dune exec bench/main.exe -- --seed 7 fig4 *)

open Bechamel
open Toolkit

let seed = ref 20060403 (* ICDE 2006 *)
let quick = ref false
let csv_dir = ref None
let json_path = ref None

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c
      | _ -> '_')
    title

let dump_csv name series =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iteri
        (fun i s ->
          let path =
            Filename.concat dir
              (Printf.sprintf "%s_%d_%s.csv" name i
                 (slug s.Experiments.Series.title))
          in
          let oc = open_out path in
          output_string oc (Experiments.Series.to_csv s);
          close_out oc)
        series

let run_figures name runner =
  Format.printf "@.######## %s ########@." name;
  let t0 = Unix.gettimeofday () in
  let series = runner ?quick:(Some !quick) ~seed:!seed () in
  Experiments.Series.print_all Format.std_formatter series;
  dump_csv name series;
  Format.printf "(%s completed in %.1fs)@." name (Unix.gettimeofday () -. t0)

(* ---- LP solve-time micro-benchmarks ---- *)

let lp_instance ~n ~n_samples ~k =
  let rng = Rng.create !seed in
  let layout = Sensor.Placement.uniform rng ~n ~width:200. ~height:200. () in
  let range = Sensor.Topology.min_connecting_range layout *. 1.25 in
  let topo = Sensor.Topology.build layout ~range in
  let cost = Sensor.Cost.of_mica2 topo Sensor.Mica2.default in
  let field =
    Sampling.Field.random_gaussian rng ~n ~mean_lo:20. ~mean_hi:30.
      ~sigma_lo:1. ~sigma_hi:4.
  in
  let samples = Sampling.Sample_set.draw rng field ~k ~count:n_samples in
  (topo, cost, samples, k)

let bechamel_table tests =
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 2.) ~kde:None ~stabilize:false
      ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let print_row (name, ols) =
    match Analyze.OLS.estimates ols with
    | Some (est :: _) ->
        Format.printf "%-40s %10.2f ms/solve@." name (est /. 1e6)
    | Some [] | None -> Format.printf "%-40s (no estimate)@." name
  in
  List.iter print_row (List.sort compare rows)

let run_lp_timing () =
  Format.printf "@.######## LP solve times (Other Results) ########@.";
  let sizes =
    if !quick then [ (40, 10, 8) ] else [ (50, 15, 10); (100, 30, 20) ]
  in
  let tests =
    List.concat_map
      (fun (n, m, k) ->
        let topo, cost, samples, k = lp_instance ~n ~n_samples:m ~k in
        let anchor =
          Prospector.Plan.expected_collection_mj topo cost
            (Prospector.Proof_exec.min_bandwidth_plan topo)
        in
        let budget = 1.2 *. anchor in
        let tag name = Printf.sprintf "%s n=%d samples=%d k=%d" name n m k in
        [
          Test.make ~name:(tag "greedy")
            (Staged.stage (fun () ->
                 ignore (Prospector.Greedy.plan topo cost samples ~budget)));
          Test.make ~name:(tag "lp-lf")
            (Staged.stage (fun () ->
                 ignore (Prospector.Lp_no_lf.plan topo cost samples ~budget)));
          Test.make ~name:(tag "lp+lf")
            (Staged.stage (fun () ->
                 ignore (Prospector.Lp_lf.plan topo cost samples ~budget ~k)));
        ])
      sizes
  in
  bechamel_table (Test.make_grouped ~name:"planners" tests);
  (* PROSPECTOR-PROOF is too slow for micro-benchmarking; report wall
     clock over a single solve, as the paper does for CPLEX. *)
  let n, m, k = if !quick then (25, 6, 5) else (40, 10, 8) in
  let topo, cost, samples, k = lp_instance ~n ~n_samples:m ~k in
  let anchor =
    Prospector.Plan.expected_collection_mj topo cost
      (Prospector.Proof_exec.min_bandwidth_plan topo)
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Prospector.Lp_proof.plan topo cost samples ~budget:(1.5 *. anchor) ~k
  in
  Format.printf "%-40s %10.2f ms/solve (wall clock)@."
    (Printf.sprintf "lp-proof n=%d samples=%d k=%d" n m k)
    (1000. *. (Unix.gettimeofday () -. t0));
  match r.Prospector.Lp_proof.lp_stats with
  | Some s ->
      Format.printf "  (simplex: %d iterations, %d refactorizations)@."
        s.Lp.Revised.iterations s.Lp.Revised.refactorizations
  | None -> ()

(* ---- machine-readable perf record (--json) ----

   Wall-clock timings plus simplex iteration counts for the LP planner
   suite, and a warm-vs-cold comparison on a perturbed planning LP.  The
   output is committed as BENCH_PR<n>.json so later PRs have a perf
   trajectory to regress against; keep the shape stable. *)

let median l =
  let a = List.sort compare l in
  List.nth a (List.length a / 2)

let time_solves ~reps f =
  ignore (f ()) (* warmup *);
  let times = ref [] and iters = ref 0 in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let stats = f () in
    times := (1000. *. (Unix.gettimeofday () -. t0)) :: !times;
    match (stats : Lp.Revised.stats option) with
    | Some s -> iters := s.Lp.Revised.iterations
    | None -> ()
  done;
  (median !times, !iters)

let run_json_bench path =
  Format.printf "@.######## JSON perf record -> %s ########@." path;
  (* Open the output before measuring so a bad path fails fast. *)
  let oc = open_out path in
  let sizes = [ (50, 15, 10); (100, 30, 20) ] in
  let solver_rows =
    List.concat_map
      (fun (n, m, k) ->
        let topo, cost, samples, k = lp_instance ~n ~n_samples:m ~k in
        let anchor =
          Prospector.Plan.expected_collection_mj topo cost
            (Prospector.Proof_exec.min_bandwidth_plan topo)
        in
        let budget = 1.2 *. anchor in
        let reps = if n >= 100 then 5 else 9 in
        let row name stats_of =
          let ms, iters = time_solves ~reps stats_of in
          Printf.sprintf
            {|    {"name": "%s", "n": %d, "samples": %d, "k": %d, "ms_per_solve": %.3f, "iterations": %d}|}
            name n m k ms iters
        in
        [
          row "lp-lf" (fun () ->
              (Prospector.Lp_no_lf.plan topo cost samples ~budget)
                .Prospector.Lp_no_lf.lp_stats);
          row "lp+lf" (fun () ->
              (Prospector.Lp_lf.plan topo cost samples ~budget ~k)
                .Prospector.Lp_lf.lp_stats);
        ])
      sizes
  in
  (* Warm-started replanning: solve a planning LP, perturb the energy
     budget, and re-solve both cold and warm from the first solve's basis. *)
  let n, m, k = (100, 30, 20) in
  let topo, cost, samples, k = lp_instance ~n ~n_samples:m ~k in
  let anchor =
    Prospector.Plan.expected_collection_mj topo cost
      (Prospector.Proof_exec.min_bandwidth_plan topo)
  in
  let budget = 1.2 *. anchor in
  let first = Prospector.Lp_lf.plan topo cost samples ~budget ~k in
  let perturbed = 1.05 *. budget in
  let iters_of (r : Prospector.Lp_lf.result) =
    match r.Prospector.Lp_lf.lp_stats with
    | Some s -> s.Lp.Revised.iterations
    | None -> 0
  in
  let t0 = Unix.gettimeofday () in
  let cold = Prospector.Lp_lf.plan topo cost samples ~budget:perturbed ~k in
  let cold_ms = 1000. *. (Unix.gettimeofday () -. t0) in
  let t0 = Unix.gettimeofday () in
  let warm =
    Prospector.Lp_lf.plan ?warm_start:first.Prospector.Lp_lf.basis topo cost
      samples ~budget:perturbed ~k
  in
  let warm_ms = 1000. *. (Unix.gettimeofday () -. t0) in
  let obj_gap =
    Float.abs
      (cold.Prospector.Lp_lf.lp_objective -. warm.Prospector.Lp_lf.lp_objective)
  in
  Printf.fprintf oc
    {|{
  "seed": %d,
  "lp_solve_times": [
%s
  ],
  "pr1_seed_baseline": {
    "comment": "pre-PR1 solver (full Dantzig pricing, cold starts) on the same instances/harness/machine, recorded when PR1 landed",
    "lp_solve_times": [
      {"name": "lp-lf", "n": 50, "samples": 15, "k": 10, "ms_per_solve": 0.759, "iterations": 58},
      {"name": "lp+lf", "n": 50, "samples": 15, "k": 10, "ms_per_solve": 8.983, "iterations": 243},
      {"name": "lp-lf", "n": 100, "samples": 30, "k": 20, "ms_per_solve": 2.004, "iterations": 132},
      {"name": "lp+lf", "n": 100, "samples": 30, "k": 20, "ms_per_solve": 94.908, "iterations": 809}
    ]
  },
  "warm_start_replan": {
    "instance": {"n": %d, "samples": %d, "k": %d, "budget_perturbation": 1.05},
    "cold_ms": %.3f,
    "cold_iterations": %d,
    "warm_ms": %.3f,
    "warm_iterations": %d,
    "warm_cold_iteration_ratio": %.4f,
    "objective_abs_gap": %.6g
  }
}
|}
    !seed
    (String.concat ",\n" solver_rows)
    n m k cold_ms (iters_of cold) warm_ms (iters_of warm)
    (float_of_int (iters_of warm) /. Float.max 1. (float_of_int (iters_of cold)))
    obj_gap;
  close_out oc;
  Format.printf "cold: %.2f ms (%d iterations)  warm: %.2f ms (%d iterations)@."
    cold_ms (iters_of cold) warm_ms (iters_of warm)

let all_experiments =
  [
    ("table1", `Plain (fun () -> Experiments.Table1.run ()));
    ("fig3", `Fig Experiments.Fig3.run);
    ("fig4", `Fig Experiments.Fig4.run);
    ("fig5", `Fig Experiments.Fig5.run);
    ("fig7", `Fig Experiments.Fig7.run);
    ("fig8", `Fig Experiments.Fig8.run);
    ("fig9", `Fig Experiments.Fig9.run);
    ("samples", `Fig Experiments.Sample_size.run);
    ("failures", `Fig Experiments.Ablation_failures.run);
    ("loss", `Fig Experiments.Ablation_loss.run);
    ("drift", `Fig Experiments.Ablation_drift.run);
    ("rounding", `Fig Experiments.Ablation_rounding.run);
    ("generalized", `Fig Experiments.Generalized.run);
    ("lifetime", `Fig Experiments.Lifetime_exp.run);
    ("modelgen", `Fig Experiments.Model_sampling.run);
    ("lptime", `Plain run_lp_timing);
  ]

let usage () =
  print_endline
    "usage: main.exe [--quick] [--seed N] [--csv DIR] [--json PATH] [experiment...]";
  Printf.printf "experiments: %s\n"
    (String.concat " " (List.map fst all_experiments));
  print_endline
    "--json PATH writes machine-readable LP solve-time and warm-start\n\
     results to PATH; with no experiment names it runs only that pass.";
  exit 1

let () =
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--csv" :: dir :: rest ->
        csv_dir := Some dir;
        parse rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse rest
    | "--seed" :: v :: rest ->
        (match int_of_string_opt v with
        | Some s -> seed := s
        | None -> usage ());
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | name :: rest ->
        if List.mem_assoc name all_experiments then begin
          selected := name :: !selected;
          parse rest
        end
        else begin
          Printf.printf "unknown experiment: %s\n" name;
          usage ()
        end
  in
  parse (List.tl (Array.to_list Sys.argv));
  let to_run =
    match (List.rev !selected, !json_path) with
    | [], Some _ -> []  (* --json alone: just the perf record *)
    | [], None -> List.map fst all_experiments
    | names, _ -> names
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc name all_experiments with
      | `Plain f -> f ()
      | `Fig runner -> run_figures name runner)
    to_run;
  Option.iter run_json_bench !json_path;
  Format.printf "@.All requested experiments completed in %.1fs.@."
    (Unix.gettimeofday () -. t0)

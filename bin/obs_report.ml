(* Pretty-print an exported telemetry trace (JSON-lines, as written by
   Obs.Trace.to_file / the bench telemetry subcommand): one aggregate row
   per (kind, name) with counts, wall-clock totals, summed attributes and
   per-kind latency percentiles.

   usage: obs_report TRACE.jsonl *)

let () =
  match Array.to_list Sys.argv with
  | [ _; path ] -> (
      match Obs.Trace.read_jsonl path with
      | Error msg ->
          Printf.eprintf "obs_report: %s: %s\n" path msg;
          exit 2
      | Ok events ->
          Printf.printf "%s: %d events\n" path (List.length events);
          Format.printf "%a@." Obs.Report.pp (Obs.Report.of_events events))
  | _ ->
      prerr_endline "usage: obs_report TRACE.jsonl";
      exit 2

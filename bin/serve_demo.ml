(* Serving-layer demo: two tenants, one server, every serving regime.

     dune exec bin/serve_demo.exe        (or: make serve-demo)

   Registers two sensor networks, then serves a short query stream that
   walks through each source the server distinguishes: a cold solve, an
   in-flight coalesced duplicate, an exact cache hit, a pooled warm start
   at a perturbed budget, and a certified (eps, delta) guarantee query.
   Finishes with the server's counters and the per-query trace. *)

let () =
  let rng = Rng.create 2006 in
  let mica = Sensor.Mica2.default in
  let mk_tenant n =
    let layout = Sensor.Placement.uniform rng ~n ~width:150. ~height:150. () in
    let range = Sensor.Topology.min_connecting_range layout *. 1.2 in
    let topo = Sensor.Topology.build layout ~range in
    let cost = Sensor.Cost.of_mica2 topo mica in
    let field =
      Sampling.Field.random_gaussian rng ~n ~mean_lo:18. ~mean_hi:26.
        ~sigma_lo:1. ~sigma_hi:4.
    in
    let samples = Sampling.Sample_set.draw rng field ~k:5 ~count:20 in
    let full =
      Prospector.Plan.expected_collection_mj topo cost
        (Prospector.Proof_exec.min_bandwidth_plan topo)
    in
    (topo, cost, samples, full)
  in
  let server = Serve.Server.create () in
  let budgets =
    List.map
      (fun (topo, cost, samples, full) ->
        let id = Serve.Server.register server topo cost samples in
        Format.printf "tenant %d: %a@." id Sensor.Topology.pp topo;
        0.5 *. full)
      [ mk_tenant 50; mk_tenant 30 ]
  in
  let b0 = List.nth budgets 0 and b1 = List.nth budgets 1 in
  let q ?guarantee ~network budget =
    Serve.Server.query ?guarantee ~network ~k:5 budget
  in
  (* two calls: the second one's repeats can hit what the first cached *)
  let first_call =
    [|
      q ~network:0 b0 (* cold *);
      q ~network:0 b0 (* coalesces onto the previous one *);
      q ~network:1 b1 (* cold, other tenant *);
    |]
  in
  let second_call =
    [|
      q ~network:0 b0 (* exact cache hit *);
      q ~network:0 (1.02 *. b0) (* pooled warm start *);
      q ~network:1 ~guarantee:(0.8, 0.1) b1 (* attainable certified target *);
      q ~network:1 ~guarantee:(0.05, 1e-6) b1 (* unattainably tight *);
    |]
  in
  let show offset stream outcomes =
    Array.iteri
      (fun i o ->
        match o with
        | Serve.Server.Served r ->
            Format.printf
              "q%d net=%d budget=%7.1f mJ -> %-5s%s objective %.2f, %.2f ms%s@."
              (offset + i) stream.(i).Serve.Server.network
              stream.(i).Serve.Server.budget
              (Serve.Server.source_to_string r.source)
              (if r.coalesced then " (coalesced)" else "")
              r.objective r.solve_ms
              (match r.guarantee with
              | Some g ->
                  Printf.sprintf ", accuracy >= %.3f w.p. %.2f"
                    g.Prospector.Guarantee.certified_lower
                    (1. -. g.Prospector.Guarantee.delta)
              | None -> "")
        | Serve.Server.Refused reason ->
            Format.printf "q%d REFUSED: %s@." (offset + i) reason)
      outcomes
  in
  show 0 first_call (Serve.Server.run server first_call);
  show (Array.length first_call) second_call (Serve.Server.run server second_call);
  let s = Serve.Server.stats server in
  Format.printf
    "@.stats: %d queries in %d batches | cache %d, pool %d, cold %d, \
     coalesced %d, refused %d | %d solves@."
    s.queries s.batches s.cache_hits s.pool_hits s.cold_misses s.coalesced
    s.refused s.solves;
  Format.printf "trace:@.";
  List.iter
    (fun (key, tag) -> Format.printf "  %-9s %s@." tag key)
    (Serve.Server.trace server)

# Convenience targets; everything is plain dune underneath.

.PHONY: all build test stress bench bench-quick bench-json bench-certify \
	bench-telemetry bench-guarantee bench-churn bench-serve serve-demo \
	guarantee churn gate lint lint-baseline examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# Robustness suites: adversarial LP corpus (degenerate / near-singular /
# badly scaled), revised-vs-dense differential checks, and planner-level
# solver-failure injection against the certified fallback chain.
stress:
	dune exec test/lp/test_lp_adversarial.exe
	dune exec test/lp/test_lp_differential.exe
	dune exec test/core/test_robust.exe

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

# Machine-readable solver benchmarks (solve times, iteration counts,
# warm-start comparison); writes BENCH_PR1.json at the repo root.
bench-json:
	dune exec bench/main.exe -- --json BENCH_PR1.json

# Certification-overhead record (checker cost vs solve time, drift
# counters, fallback probe); writes BENCH_PR3.json at the repo root.
bench-certify:
	dune exec bench/main.exe -- certify

# Telemetry record: LP solve-time histogram percentiles, per-epoch
# energy/traffic from a lossy simulated collection, and the telemetry
# overhead probe.  Writes BENCH_PR4.json plus the raw trace
# (OBS_TRACE.jsonl / OBS_TRACE.csv) at the repo root.
bench-telemetry:
	dune exec bench/main.exe -- telemetry

# Guarantee trade-off record: the certified (eps, delta) bound along a
# budget ladder plus one escalation run; writes BENCH_GUARANTEE.json at
# the repo root.
bench-guarantee:
	dune exec bench/main.exe -- guarantee

# Statistical bound-violation sweep (the certified-guarantee harness) with
# its JSON summary written next to the repo root.  Tune with
# GUARANTEE_SEEDS / GUARANTEE_SEED_OFFSET, e.g.
#   make guarantee GUARANTEE_SEEDS=500 GUARANTEE_SEED_OFFSET=1000
guarantee:
	GUARANTEE_SUMMARY=$(CURDIR)/_guarantee_sweep.json \
	  dune exec test/core/test_guarantee.exe

# Churn recovery record: per-victim plan-surgery latency and delta-install
# energy vs a full re-plan, plus one crash-restart controller campaign;
# writes BENCH_CHURN.json at the repo root.
bench-churn:
	dune exec bench/main.exe -- churn

# Chaos campaign (the self-healing harness): crash / crash-restart /
# burst+bernoulli+crash schedules across rotating seeds, with its JSON
# summary written next to the repo root.  Tune with
# CHURN_SEEDS / CHURN_SEED_OFFSET, e.g.
#   make churn CHURN_SEEDS=500 CHURN_SEED_OFFSET=1000
churn:
	CHURN_SUMMARY=$(CURDIR)/_churn_sweep.json \
	  dune exec test/core/test_churn.exe

# Serving-layer record: cold vs cache-hit vs pooled-warm latencies, the
# mixed hit-traffic speedup, domain-scaling makespans and the cache/pool
# counters over a seeded multi-tenant query stream; writes
# BENCH_SERVE.json at the repo root.  The bench itself enforces the
# acceptance thresholds (>= 5x hit traffic vs cold, > 1.5x scaling 1->4).
bench-serve:
	dune exec bench/main.exe -- serve

# Walk every serving regime (cold / coalesced / cache / pool / certified
# guarantee) on a tiny two-tenant server and print the stats and trace.
serve-demo:
	dune exec bin/serve_demo.exe

# Perf-regression gate: regenerate the perf records into _gate_fresh_*
# scratch files (never over the committed baselines) and compare each
# against its committed BENCH_*.json within the gate's tolerances
# (±30% on latencies, exact on deterministic energies and serving
# counters).  The comparator self-test runs first so a broken gate can't
# pass anything.
gate:
	dune exec tools/bench_gate.exe -- --self-test
	dune exec bench/main.exe -- --json _gate_fresh_pr1.json
	dune exec bench/main.exe -- certify --out _gate_fresh_pr3.json
	dune exec bench/main.exe -- churn --out _gate_fresh_churn.json
	dune exec bench/main.exe -- serve --out _gate_fresh_serve.json
	dune exec tools/bench_gate.exe -- BENCH_PR1.json _gate_fresh_pr1.json
	dune exec tools/bench_gate.exe -- BENCH_PR3.json _gate_fresh_pr3.json
	dune exec tools/bench_gate.exe -- BENCH_CHURN.json _gate_fresh_churn.json
	dune exec tools/bench_gate.exe -- BENCH_SERVE.json _gate_fresh_serve.json

# Typed invariant lint (tools/repolint): determinism, hash-order,
# polymorphic comparison, partial accessors, stdout hygiene, plus the
# interprocedural certification-taint (R6) and domain-safety (R7) rules.
# The engine consumes dune-produced .cmt typedtrees, so the tree must be
# built first (@check materialises .cmt files @all alone leaves out).
# Exit 1 = fresh findings, exit 3 = stale baseline entries; writes a
# JSON report (schema repolint/2).
lint:
	dune build @all @check
	dune exec tools/repolint/repolint.exe -- --json _lint_report.json

# Regenerate lint_baseline.txt from the current findings.  Keep the
# baseline empty when you can: prefer fixing, or a scoped
# [@lint.allow "Rn"] next to the offending expression.
lint-baseline:
	dune build @all @check
	dune exec tools/repolint/repolint.exe -- --write-baseline

examples:
	dune exec examples/quickstart.exe
	dune exec examples/birdwatch.exe
	dune exec examples/lab_monitoring.exe
	dune exec examples/lossy_links.exe
	dune exec examples/building_monitor.exe

clean:
	dune clean

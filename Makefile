# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-quick bench-json examples clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

# Machine-readable solver benchmarks (solve times, iteration counts,
# warm-start comparison); writes BENCH_PR1.json at the repo root.
bench-json:
	dune exec bench/main.exe -- --json BENCH_PR1.json

examples:
	dune exec examples/quickstart.exe
	dune exec examples/birdwatch.exe
	dune exec examples/lab_monitoring.exe
	dune exec examples/lossy_links.exe
	dune exec examples/building_monitor.exe

clean:
	dune clean
